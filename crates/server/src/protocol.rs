//! The tl-wire/1 protocol: length-prefixed, checksummed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! | u32 LE body-len | body bytes | u64 LE FNV-1a(body) |
//! ```
//!
//! The trailing checksum mirrors the summary file format's corruption
//! stance: a flipped bit anywhere in the body surfaces as a typed
//! [`Fault`] ([`FaultKind::Parse`]) at the decoder, never as a wrong
//! answer or an untyped I/O error. Body length is capped at
//! [`MAX_FRAME_LEN`] so a garbage length prefix cannot drive an
//! allocation.
//!
//! Inside the body, the first byte of a request is the operation code
//! ([`Request`]); the first byte of a response is the status byte, which
//! is *literally* the process exit code from the one shared table
//! ([`tl_fault::exit_code`]) — `0` success (possibly degraded; the
//! degradation tag says so), `2` usage error, `3` fault. Strings are
//! `u32 LE length | UTF-8 bytes`; floats travel as `f64::to_bits` so
//! estimates are bit-identical across the wire.

use std::io::{self, Read, Write};

use tl_fault::{exit_code, Degradation, Fault, FaultKind, Outcome};
use treelattice::Estimator;

/// Upper bound on a frame body; decoders reject bigger length prefixes
/// before allocating.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// FNV-1a 64-bit, the frame checksum. Stable, dependency-free, and cheap
/// enough to run on every frame.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One client request. The tenant name scopes scheduling (fair-queue
/// lane) and budget enforcement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Estimate one twig query.
    Estimate {
        tenant: String,
        estimator: Estimator,
        query: String,
    },
    /// Estimate a batch of twig queries in one round trip.
    EstimateBatch {
        tenant: String,
        estimator: Estimator,
        queries: Vec<String>,
    },
    /// Look up the exact stored count for a query's canonical pattern,
    /// if the summary holds one.
    Truth { tenant: String, query: String },
    /// Feed back the true cardinality of an executed query (the online
    /// tuning path; memory backend only). `idem` is a client-chosen
    /// idempotency key (`0` = none): a retried update with the same key
    /// is acknowledged without re-applying, so an ack lost in flight
    /// cannot double-apply.
    Update {
        tenant: String,
        query: String,
        true_count: u64,
        idem: u64,
    },
    /// Fetch the tl-metrics/1 snapshot JSON.
    Scrape { tenant: String },
}

impl Request {
    pub fn tenant(&self) -> &str {
        match self {
            Request::Estimate { tenant, .. }
            | Request::EstimateBatch { tenant, .. }
            | Request::Truth { tenant, .. }
            | Request::Update { tenant, .. }
            | Request::Scrape { tenant } => tenant,
        }
    }

    /// Stable op name for logs and error messages.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Estimate { .. } => "estimate",
            Request::EstimateBatch { .. } => "estimate-batch",
            Request::Truth { .. } => "truth",
            Request::Update { .. } => "update",
            Request::Scrape { .. } => "scrape",
        }
    }
}

/// An estimate as it travels on the wire: the value plus its provenance,
/// exactly the [`treelattice::ResilientEstimate`] contract.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEstimate {
    pub value: f64,
    pub degradation: Degradation,
    pub cause: Option<Fault>,
}

impl WireEstimate {
    pub fn exact(value: f64) -> Self {
        Self {
            value,
            degradation: Degradation::None,
            cause: None,
        }
    }
}

/// One server response. `Error` is the only non-`0` status; everything
/// else is a success (degradations ride inside [`WireEstimate`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Estimate(WireEstimate),
    /// Per-item results: a contained worker panic faults one item without
    /// losing the rest.
    Batch(Vec<Result<WireEstimate, Fault>>),
    Truth {
        stored: Option<u64>,
    },
    Updated {
        generation: u64,
    },
    Scrape {
        json: String,
    },
    /// A typed failure: `outcome` picks the status byte (usage = 2,
    /// fault = 3), `fault` carries the kind and message.
    Error {
        outcome: Outcome,
        fault: Fault,
    },
}

impl Response {
    pub fn usage(fault: Fault) -> Self {
        Response::Error {
            outcome: Outcome::UsageError,
            fault,
        }
    }

    pub fn fault(fault: Fault) -> Self {
        Response::Error {
            outcome: Outcome::Fault,
            fault,
        }
    }

    /// The status byte: the shared exit-code table applied to this
    /// response.
    pub fn status(&self) -> u8 {
        let outcome = match self {
            Response::Error { outcome, .. } => *outcome,
            Response::Estimate(e) if e.degradation.is_degraded() => Outcome::DegradedOk,
            _ => Outcome::Success,
        };
        exit_code(outcome) as u8
    }
}

// --- framing ---------------------------------------------------------

/// Writes one frame (`len | body | checksum`) to `w`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.write_all(&fnv1a(body).to_le_bytes())?;
    w.flush()
}

/// How reading a frame can end besides success.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// An I/O error (includes read timeouts, which callers use to poll
    /// shutdown flags).
    Io(io::Error),
    /// The frame was structurally bad: oversized length prefix,
    /// truncated body, or checksum mismatch.
    Corrupt(Fault),
}

/// Reads one frame, verifying the checksum. Truncation mid-frame and
/// checksum mismatches come back as `Corrupt` with a typed
/// [`FaultKind::Parse`] fault.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Err(FrameError::Eof),
        Ok(n) if n < 4 => {
            if let Err(e) = r.read_exact(&mut len_buf[n..]) {
                return Err(truncated(e));
            }
        }
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt(Fault::parse(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        ))));
    }
    let mut body = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut body) {
        return Err(truncated(e));
    }
    let mut sum_buf = [0u8; 8];
    if let Err(e) = r.read_exact(&mut sum_buf) {
        return Err(truncated(e));
    }
    let expect = u64::from_le_bytes(sum_buf);
    let got = fnv1a(&body);
    if got != expect {
        return Err(FrameError::Corrupt(Fault::parse(format!(
            "frame checksum mismatch: stored {expect:#x}, computed {got:#x}"
        ))));
    }
    Ok(body)
}

fn truncated(e: io::Error) -> FrameError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        FrameError::Corrupt(Fault::parse("truncated frame"))
    } else {
        FrameError::Io(e)
    }
}

// --- body encoding ---------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], Fault> {
        if self.buf.len() - self.pos < n {
            return Err(Fault::parse(format!(
                "truncated {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, Fault> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, Fault> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &str) -> Result<u32, Fault> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &str) -> Result<u64, Fault> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, Fault> {
        let len = self.u32(what)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(Fault::parse(format!(
                "{what} length {len} exceeds frame cap"
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Fault::parse(format!("{what} is not valid UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), Fault> {
        if self.pos != self.buf.len() {
            return Err(Fault::parse(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

const OP_ESTIMATE: u8 = 0;
const OP_BATCH: u8 = 1;
const OP_TRUTH: u8 = 2;
const OP_UPDATE: u8 = 3;
const OP_SCRAPE: u8 = 4;

fn estimator_code(e: Estimator) -> u8 {
    match e {
        Estimator::Recursive => 0,
        Estimator::RecursiveVoting => 1,
        Estimator::FixSized => 2,
        Estimator::FixSizedVoting => 3,
    }
}

fn estimator_from(code: u8) -> Result<Estimator, Fault> {
    match code {
        0 => Ok(Estimator::Recursive),
        1 => Ok(Estimator::RecursiveVoting),
        2 => Ok(Estimator::FixSized),
        3 => Ok(Estimator::FixSizedVoting),
        other => Err(Fault::parse(format!("unknown estimator code {other}"))),
    }
}

fn fault_kind_code(k: FaultKind) -> u8 {
    match k {
        FaultKind::Parse => 0,
        FaultKind::BudgetExhausted => 1,
        FaultKind::GroupTooLarge => 2,
        FaultKind::CorruptSummary => 3,
        FaultKind::WorkerPanic => 4,
        FaultKind::Timeout => 5,
    }
}

fn fault_kind_from(code: u8) -> Result<FaultKind, Fault> {
    match code {
        0 => Ok(FaultKind::Parse),
        1 => Ok(FaultKind::BudgetExhausted),
        2 => Ok(FaultKind::GroupTooLarge),
        3 => Ok(FaultKind::CorruptSummary),
        4 => Ok(FaultKind::WorkerPanic),
        5 => Ok(FaultKind::Timeout),
        other => Err(Fault::parse(format!("unknown fault kind code {other}"))),
    }
}

fn enc_fault(enc: &mut Enc, f: &Fault) {
    enc.u8(fault_kind_code(f.kind));
    enc.string(&f.message);
}

fn dec_fault(dec: &mut Dec) -> Result<Fault, Fault> {
    let kind = fault_kind_from(dec.u8("fault kind")?)?;
    let message = dec.string("fault message")?;
    Ok(Fault::new(kind, message))
}

fn enc_estimate(enc: &mut Enc, e: &WireEstimate) {
    match e.degradation {
        Degradation::None => enc.u8(0),
        Degradation::ReducedK { k } => {
            enc.u8(1);
            enc.u16(k as u16);
        }
        Degradation::Markov => enc.u8(2),
    }
    match &e.cause {
        None => enc.u8(0),
        Some(f) => {
            enc.u8(1);
            enc_fault(enc, f);
        }
    }
    enc.u64(e.value.to_bits());
}

fn dec_estimate(dec: &mut Dec) -> Result<WireEstimate, Fault> {
    let degradation = match dec.u8("degradation tag")? {
        0 => Degradation::None,
        1 => Degradation::ReducedK {
            k: dec.u16("reduced k")? as usize,
        },
        2 => Degradation::Markov,
        other => return Err(Fault::parse(format!("unknown degradation tag {other}"))),
    };
    let cause = match dec.u8("cause tag")? {
        0 => None,
        1 => Some(dec_fault(dec)?),
        other => return Err(Fault::parse(format!("unknown cause tag {other}"))),
    };
    let value = f64::from_bits(dec.u64("estimate value")?);
    Ok(WireEstimate {
        value,
        degradation,
        cause,
    })
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc(Vec::with_capacity(64));
        match self {
            Request::Estimate {
                tenant,
                estimator,
                query,
            } => {
                enc.u8(OP_ESTIMATE);
                enc.string(tenant);
                enc.u8(estimator_code(*estimator));
                enc.string(query);
            }
            Request::EstimateBatch {
                tenant,
                estimator,
                queries,
            } => {
                enc.u8(OP_BATCH);
                enc.string(tenant);
                enc.u8(estimator_code(*estimator));
                enc.u16(queries.len() as u16);
                for q in queries {
                    enc.string(q);
                }
            }
            Request::Truth { tenant, query } => {
                enc.u8(OP_TRUTH);
                enc.string(tenant);
                enc.string(query);
            }
            Request::Update {
                tenant,
                query,
                true_count,
                idem,
            } => {
                enc.u8(OP_UPDATE);
                enc.string(tenant);
                enc.string(query);
                enc.u64(*true_count);
                enc.u64(*idem);
            }
            Request::Scrape { tenant } => {
                enc.u8(OP_SCRAPE);
                enc.string(tenant);
            }
        }
        enc.0
    }

    /// Decodes a request body. Every malformation — unknown op, truncated
    /// field, bad UTF-8, trailing garbage — is a typed parse [`Fault`].
    pub fn decode(body: &[u8]) -> Result<Self, Fault> {
        let mut dec = Dec::new(body);
        let op = dec.u8("op code")?;
        let tenant = dec.string("tenant")?;
        let req = match op {
            OP_ESTIMATE => {
                let estimator = estimator_from(dec.u8("estimator")?)?;
                let query = dec.string("query")?;
                Request::Estimate {
                    tenant,
                    estimator,
                    query,
                }
            }
            OP_BATCH => {
                let estimator = estimator_from(dec.u8("estimator")?)?;
                let n = dec.u16("batch size")? as usize;
                let mut queries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    queries.push(dec.string("batch query")?);
                }
                Request::EstimateBatch {
                    tenant,
                    estimator,
                    queries,
                }
            }
            OP_TRUTH => Request::Truth {
                tenant,
                query: dec.string("query")?,
            },
            OP_UPDATE => Request::Update {
                tenant,
                query: dec.string("query")?,
                true_count: dec.u64("true count")?,
                idem: dec.u64("idempotency key")?,
            },
            OP_SCRAPE => Request::Scrape { tenant },
            other => return Err(Fault::parse(format!("unknown op code {other}"))),
        };
        dec.finish("request")?;
        Ok(req)
    }
}

const RESP_ESTIMATE: u8 = 0;
const RESP_BATCH: u8 = 1;
const RESP_TRUTH: u8 = 2;
const RESP_UPDATED: u8 = 3;
const RESP_SCRAPE: u8 = 4;

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc(Vec::with_capacity(32));
        enc.u8(self.status());
        match self {
            Response::Error { fault, .. } => {
                enc_fault(&mut enc, fault);
            }
            Response::Estimate(e) => {
                enc.u8(RESP_ESTIMATE);
                enc_estimate(&mut enc, e);
            }
            Response::Batch(items) => {
                enc.u8(RESP_BATCH);
                enc.u16(items.len() as u16);
                for item in items {
                    match item {
                        Ok(e) => {
                            enc.u8(0);
                            enc_estimate(&mut enc, e);
                        }
                        Err(f) => {
                            enc.u8(1);
                            enc_fault(&mut enc, f);
                        }
                    }
                }
            }
            Response::Truth { stored } => {
                enc.u8(RESP_TRUTH);
                match stored {
                    None => enc.u8(0),
                    Some(c) => {
                        enc.u8(1);
                        enc.u64(*c);
                    }
                }
            }
            Response::Updated { generation } => {
                enc.u8(RESP_UPDATED);
                enc.u64(*generation);
            }
            Response::Scrape { json } => {
                enc.u8(RESP_SCRAPE);
                enc.string(json);
            }
        }
        enc.0
    }

    pub fn decode(body: &[u8]) -> Result<Self, Fault> {
        let mut dec = Dec::new(body);
        let status = dec.u8("status byte")?;
        let resp = match status {
            0 => {
                let tag = dec.u8("response tag")?;
                match tag {
                    RESP_ESTIMATE => Response::Estimate(dec_estimate(&mut dec)?),
                    RESP_BATCH => {
                        let n = dec.u16("batch size")? as usize;
                        let mut items = Vec::with_capacity(n.min(1024));
                        for _ in 0..n {
                            items.push(match dec.u8("batch item tag")? {
                                0 => Ok(dec_estimate(&mut dec)?),
                                1 => Err(dec_fault(&mut dec)?),
                                other => {
                                    return Err(Fault::parse(format!(
                                        "unknown batch item tag {other}"
                                    )))
                                }
                            });
                        }
                        Response::Batch(items)
                    }
                    RESP_TRUTH => Response::Truth {
                        stored: match dec.u8("truth tag")? {
                            0 => None,
                            1 => Some(dec.u64("truth count")?),
                            other => {
                                return Err(Fault::parse(format!("unknown truth tag {other}")))
                            }
                        },
                    },
                    RESP_UPDATED => Response::Updated {
                        generation: dec.u64("generation")?,
                    },
                    RESP_SCRAPE => Response::Scrape {
                        json: dec.string("snapshot json")?,
                    },
                    other => return Err(Fault::parse(format!("unknown response tag {other}"))),
                }
            }
            2 => Response::Error {
                outcome: Outcome::UsageError,
                fault: dec_fault(&mut dec)?,
            },
            3 => Response::Error {
                outcome: Outcome::Fault,
                fault: dec_fault(&mut dec)?,
            },
            other => return Err(Fault::parse(format!("unknown status byte {other}"))),
        };
        dec.finish("response")?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Estimate {
                tenant: "alpha".into(),
                estimator: Estimator::RecursiveVoting,
                query: "a[b][c/d]".into(),
            },
            Request::EstimateBatch {
                tenant: "beta".into(),
                estimator: Estimator::FixSized,
                queries: vec!["a/b".into(), "r//x".into(), String::new()],
            },
            Request::Truth {
                tenant: "t".into(),
                query: "a/b/c".into(),
            },
            Request::Update {
                tenant: String::new(),
                query: "a".into(),
                true_count: u64::MAX,
                idem: 0xdead_beef,
            },
            Request::Scrape {
                tenant: "ops".into(),
            },
        ]
    }

    #[test]
    fn request_round_trip() {
        for req in sample_requests() {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip_preserves_value_bits() {
        let responses = vec![
            Response::Estimate(WireEstimate::exact(1234.5678e-3)),
            Response::Estimate(WireEstimate {
                value: f64::MIN_POSITIVE,
                degradation: Degradation::ReducedK { k: 3 },
                cause: Some(Fault::timeout("deadline expired")),
            }),
            Response::Batch(vec![
                Ok(WireEstimate::exact(0.0)),
                Err(Fault::worker_panic("boom")),
                Ok(WireEstimate {
                    value: 7.0,
                    degradation: Degradation::Markov,
                    cause: Some(Fault::budget("queue full")),
                }),
            ]),
            Response::Truth { stored: Some(42) },
            Response::Truth { stored: None },
            Response::Updated { generation: 9 },
            Response::Scrape {
                json: "{\"schema\":\"tl-metrics/1\"}".into(),
            },
            Response::usage(Fault::parse("bad query")),
            Response::fault(Fault::corrupt_summary("bad frame")),
        ];
        for resp in responses {
            let body = resp.encode();
            let back = Response::decode(&body).unwrap();
            assert_eq!(back, resp);
            if let (Response::Estimate(a), Response::Estimate(b)) = (&resp, &back) {
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
        }
    }

    #[test]
    fn status_byte_follows_exit_code_table() {
        assert_eq!(Response::Estimate(WireEstimate::exact(1.0)).status(), 0);
        // Degraded is still success to scripts: status 0.
        let degraded = Response::Estimate(WireEstimate {
            value: 1.0,
            degradation: Degradation::Markov,
            cause: None,
        });
        assert_eq!(degraded.status(), 0);
        assert_eq!(Response::usage(Fault::parse("x")).status(), 2);
        assert_eq!(Response::fault(Fault::timeout("x")).status(), 3);
    }

    #[test]
    fn frame_round_trip_and_corruption() {
        let body = Request::Scrape { tenant: "x".into() }.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();

        // Clean round trip.
        let got = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(got, body);

        // A flipped bit in the body trips the checksum as a typed fault.
        let mut flipped = wire.clone();
        flipped[5] ^= 0x40;
        match read_frame(&mut flipped.as_slice()) {
            Err(FrameError::Corrupt(f)) => assert_eq!(f.kind, FaultKind::Parse),
            other => panic!("expected corrupt, got {other:?}"),
        }

        // Truncation mid-frame is typed too.
        let cut = &wire[..wire.len() - 3];
        match read_frame(&mut &cut[..]) {
            Err(FrameError::Corrupt(f)) => assert_eq!(f.kind, FaultKind::Parse),
            other => panic!("expected corrupt, got {other:?}"),
        }

        // EOF between frames is a clean close, not a fault.
        match read_frame(&mut [].as_slice()) {
            Err(FrameError::Eof) => {}
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Corrupt(f)) => {
                assert_eq!(f.kind, FaultKind::Parse);
                assert!(f.message.contains("exceeds cap"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }
}
