//! Admission control and weighted fair queueing across tenants.
//!
//! Classic virtual-time WFQ, one lane per tenant: each tenant carries a
//! virtual finish time that advances by `1 / weight` per dispatched
//! request, and workers always pop from the non-empty lane with the
//! smallest virtual time. A tenant whose lane went idle re-enters at the
//! scheduler's current virtual clock (no credit hoarding), so a flooding
//! tenant with weight `w_f` can never push a trickle tenant with weight
//! `w_t` further behind than the configured `w_f : w_t` service ratio —
//! the starvation bound the fairness test pins.
//!
//! Admission control is a per-lane depth cap: an enqueue into a full lane
//! is refused *before* it costs a queue slot, and the caller answers the
//! request degraded-with-provenance instead (see `server.rs`). Refusals
//! are never silent drops.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One tenant's scheduling configuration.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    pub name: String,
    /// Relative service share; dispatching one request advances the
    /// lane's virtual time by `1 / weight`.
    pub weight: u32,
    /// Admission cap: the lane holds at most this many queued requests.
    pub queue_cap: usize,
}

impl TenantConfig {
    pub fn new(name: impl Into<String>, weight: u32, queue_cap: usize) -> Self {
        Self {
            name: name.into(),
            weight: weight.max(1),
            queue_cap: queue_cap.max(1),
        }
    }
}

/// Why an enqueue was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The tenant's lane is at its admission cap.
    LaneFull,
    /// The server is draining for shutdown; no new work is admitted.
    Draining,
}

struct Lane<T> {
    weight: f64,
    cap: usize,
    /// Virtual finish time of the lane's last dispatched request.
    vtime: f64,
    queue: VecDeque<T>,
}

struct Inner<T> {
    lanes: Vec<Lane<T>>,
    /// The scheduler's virtual clock: the vtime of the most recently
    /// dispatched request. Idle lanes catch up to it on re-entry.
    vclock: f64,
    depth: usize,
    draining: bool,
    shutdown: bool,
}

/// The shared tenant-fair work queue. `T` is the job payload.
pub struct FairQueue<T> {
    names: Vec<String>,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> FairQueue<T> {
    pub fn new(tenants: &[TenantConfig]) -> Self {
        assert!(!tenants.is_empty(), "fair queue needs at least one tenant");
        Self {
            names: tenants.iter().map(|t| t.name.clone()).collect(),
            inner: Mutex::new(Inner {
                lanes: tenants
                    .iter()
                    .map(|t| Lane {
                        weight: f64::from(t.weight.max(1)),
                        cap: t.queue_cap.max(1),
                        vtime: 0.0,
                        queue: VecDeque::new(),
                    })
                    .collect(),
                vclock: 0.0,
                depth: 0,
                draining: false,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Resolves a tenant name to its lane index, if configured.
    pub fn lane_of(&self, tenant: &str) -> Option<usize> {
        self.names.iter().position(|n| n == tenant)
    }

    pub fn tenant_name(&self, lane: usize) -> &str {
        &self.names[lane]
    }

    pub fn tenant_names(&self) -> &[String] {
        &self.names
    }

    /// Admits `item` into `lane`. `Ok(depth)` is the total queue depth
    /// *after* the insert (so `depth > 1` means the request waited behind
    /// other work); `Err` is an admission refusal — it costs nothing and
    /// hands the item back so the caller can answer it degraded.
    pub fn enqueue(&self, lane: usize, item: T) -> Result<usize, (T, Refusal)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.draining || inner.shutdown {
            return Err((item, Refusal::Draining));
        }
        let vclock = inner.vclock;
        let l = &mut inner.lanes[lane];
        if l.queue.len() >= l.cap {
            return Err((item, Refusal::LaneFull));
        }
        if l.queue.is_empty() {
            // Re-entry after idling: no banked credit from the past.
            l.vtime = l.vtime.max(vclock);
        }
        l.queue.push_back(item);
        inner.depth += 1;
        let depth = inner.depth;
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available, returning `(lane, item)`; `None`
    /// once the queue is shut down and empty. Dispatch order is WFQ:
    /// smallest virtual time first.
    pub fn dequeue(&self) -> Option<(usize, T)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.depth > 0 {
                let lane = inner
                    .lanes
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.queue.is_empty())
                    .min_by(|(_, a), (_, b)| a.vtime.total_cmp(&b.vtime))
                    .map(|(i, _)| i)
                    .expect("depth > 0 implies a non-empty lane");
                let l = &mut inner.lanes[lane];
                let item = l.queue.pop_front().expect("non-empty lane");
                l.vtime += 1.0 / l.weight;
                inner.vclock = inner.lanes[lane].vtime;
                inner.depth -= 1;
                return Some((lane, item));
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Current total queued depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").depth
    }

    /// Stops admitting new work; queued work still drains.
    pub fn begin_drain(&self) {
        self.inner.lock().expect("queue lock").draining = true;
    }

    /// Wakes all workers; `dequeue` returns `None` once empty.
    pub fn shutdown(&self) {
        {
            let mut inner = self.inner.lock().expect("queue lock");
            inner.draining = true;
            inner.shutdown = true;
        }
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(weights: &[(u32, usize)]) -> FairQueue<u32> {
        let tenants: Vec<TenantConfig> = weights
            .iter()
            .enumerate()
            .map(|(i, &(w, cap))| TenantConfig::new(format!("t{i}"), w, cap))
            .collect();
        FairQueue::new(&tenants)
    }

    #[test]
    fn dispatch_respects_weights() {
        // Weight 3 vs weight 1, both lanes saturated: out of every 4
        // dispatches, 3 belong to the heavy tenant.
        let q = q(&[(3, 100), (1, 100)]);
        for i in 0..40u32 {
            q.enqueue(0, i).unwrap();
            q.enqueue(1, i).unwrap();
        }
        let first40: Vec<usize> = (0..40).map(|_| q.dequeue().unwrap().0).collect();
        let heavy = first40.iter().filter(|&&l| l == 0).count();
        assert_eq!(heavy, 30, "weight-3 tenant gets 3/4 of saturated service");
    }

    #[test]
    fn admission_cap_refuses_before_queueing() {
        let q = q(&[(1, 2)]);
        q.enqueue(0, 1).unwrap();
        q.enqueue(0, 2).unwrap();
        assert_eq!(q.enqueue(0, 3), Err((3, Refusal::LaneFull)));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn idle_lane_reenters_at_vclock_without_banked_credit() {
        let q = q(&[(1, 100), (1, 100)]);
        // Tenant 0 runs alone for a while, advancing the clock.
        for i in 0..10u32 {
            q.enqueue(0, i).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(q.dequeue().unwrap().0, 0);
        }
        // Tenant 1 arrives late. Without vclock catch-up it would own the
        // next 10 dispatches outright; with it, service alternates.
        for i in 0..10u32 {
            q.enqueue(0, i).unwrap();
            q.enqueue(1, i).unwrap();
        }
        let lanes: Vec<usize> = (0..4).map(|_| q.dequeue().unwrap().0).collect();
        assert!(
            lanes.contains(&0) && lanes.contains(&1),
            "late tenant must not monopolize: {lanes:?}"
        );
    }

    #[test]
    fn drain_refuses_new_work_but_serves_queued() {
        let q = q(&[(1, 10)]);
        q.enqueue(0, 7).unwrap();
        q.begin_drain();
        assert_eq!(q.enqueue(0, 8), Err((8, Refusal::Draining)));
        assert_eq!(q.dequeue().unwrap().1, 7);
        q.shutdown();
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn shutdown_unblocks_waiting_workers() {
        let q = std::sync::Arc::new(q(&[(1, 10)]));
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.dequeue());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert!(waiter.join().unwrap().is_none());
    }
}
