//! The estimation service: listener, worker pool, and the
//! degraded-with-provenance overload path.
//!
//! Request lifecycle:
//!
//! 1. A connection thread reads one frame, decodes it, and parses the
//!    query against the catalog's label table. Malformed bytes are a
//!    typed fault (status 3); a bad query string is a usage error
//!    (status 2). Neither costs a queue slot.
//! 2. The request is admitted into its tenant's fair-queue lane. If the
//!    lane is full (or the server is draining), the request is **shed**:
//!    the connection thread answers immediately with the closed-form
//!    Markov estimate ([`treelattice::markov_estimate_store`]) tagged
//!    [`Degradation::Markov`] and a cause fault naming the refusal — the
//!    [`treelattice::ResilientEstimate`] contract, so overload is never
//!    an untyped error and never silence.
//! 3. A worker dequeues in weighted-fair order and runs the requested
//!    estimator under the tenant's [`Budget`] (deadline measured from
//!    admission, so queue wait counts against it). Budget trips degrade
//!    down the ladder inside the engine; the response carries the rung.
//!
//! `scrape` bypasses the queue entirely: observability must work *best*
//! exactly when the server is overloaded.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use tl_fault::{Budget, Degradation, Fault};
use tl_obs::{names, MetricsRecorder, Recorder};
use tl_twig::canonical::key_of;
use tl_twig::{parse_twig, Twig};
use treelattice::{
    markov_estimate_store, Catalog, DurabilityPolicy, DurableLattice, DurableOptions, EngineConfig,
    EstimateOptions, EstimationEngine, Estimator, Lookup, MmapCatalog, PatternStore,
    ResilientEstimate, TreeLattice, TunedLattice,
};

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, WireEstimate};
use crate::queue::{FairQueue, Refusal, TenantConfig};

/// Per-tenant budget template; a concrete [`Budget`] (with its deadline
/// anchored at admission time) is minted per request.
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetSpec {
    pub time_limit_ms: Option<u64>,
    pub max_mem_bytes: Option<u64>,
    pub max_k: Option<usize>,
}

impl BudgetSpec {
    pub fn is_unlimited(&self) -> bool {
        self.time_limit_ms.is_none() && self.max_mem_bytes.is_none() && self.max_k.is_none()
    }

    /// Mints the per-request budget, anchoring the deadline now.
    pub fn to_budget(&self) -> Budget {
        let mut b = Budget {
            max_mem_bytes: self.max_mem_bytes,
            deadline: None,
            max_k: self.max_k,
        };
        if let Some(ms) = self.time_limit_ms {
            b = b.with_time_limit(Duration::from_millis(ms));
        }
        b
    }
}

/// One tenant: scheduling lane plus an optional budget override.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    pub config: TenantConfig,
    /// `None` inherits [`ServerConfig::default_budget`].
    pub budget: Option<BudgetSpec>,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, weight: u32, queue_cap: usize) -> Self {
        Self {
            config: TenantConfig::new(name, weight, queue_cap),
            budget: None,
        }
    }
}

/// Full server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub summary_path: PathBuf,
    /// Serve from the zero-copy mmap catalog instead of deserializing
    /// into memory. Read-only: `update` requests are refused as usage
    /// errors, and rung-1 estimates run unbudgeted (catalog parity with
    /// the CLI's `--mmap` contract); sheds still degrade to Markov.
    pub mmap: bool,
    /// Port to bind on 127.0.0.1; `0` asks the OS for an ephemeral port
    /// (read it back from [`ServerHandle::addr`] or `--port-file`).
    pub port: u16,
    /// Worker threads; `0` means available parallelism.
    pub workers: usize,
    pub tenants: Vec<TenantSpec>,
    /// Budget for tenants without an override.
    pub default_budget: BudgetSpec,
    /// Byte budget of the online feedback layer (`update` requests).
    pub online_budget_bytes: usize,
    /// Durability directory. When set, every accepted `update` is
    /// appended to a write-ahead log here before it is acknowledged, and
    /// startup recovers from the newest valid snapshot plus the WAL
    /// tail. Incompatible with `mmap` (read-only backend).
    pub wal_dir: Option<PathBuf>,
    /// fsync policy for WAL appends (only meaningful with `wal_dir`).
    pub durability: DurabilityPolicy,
    /// Publish an atomic snapshot (and truncate the WAL) every N
    /// acknowledged updates; `0` disables count-triggered snapshots
    /// (drain still writes a final one).
    pub snapshot_every: u64,
    /// Close connections idle longer than this many milliseconds;
    /// `0` keeps half-open peers forever (the pre-durability behavior).
    pub idle_timeout_ms: u64,
}

impl ServerConfig {
    pub fn new(summary_path: impl Into<PathBuf>) -> Self {
        Self {
            summary_path: summary_path.into(),
            mmap: false,
            port: 0,
            workers: 0,
            tenants: Vec::new(),
            default_budget: BudgetSpec::default(),
            online_budget_bytes: 1 << 20,
            wal_dir: None,
            durability: DurabilityPolicy::Batch,
            snapshot_every: 512,
            idle_timeout_ms: 60_000,
        }
    }
}

/// The lane every unconfigured tenant name maps to.
pub const DEFAULT_TENANT: &str = "default";
const DEFAULT_QUEUE_CAP: usize = 256;

/// The in-memory store behind `update`: a plain tuned lattice (loss on
/// crash) or a [`DurableLattice`] whose WAL append gates every ack.
enum Store {
    Plain(TunedLattice),
    Durable(DurableLattice),
}

impl Store {
    fn tuned(&self) -> &TunedLattice {
        match self {
            Store::Plain(t) => t,
            Store::Durable(d) => d.tuned(),
        }
    }
}

enum Backend {
    Memory {
        // Boxed so the enum stays near the size of its mmap variant.
        store: Box<RwLock<Store>>,
        engine: EstimationEngine,
    },
    Mmap {
        catalog: MmapCatalog,
    },
}

impl Backend {
    /// Rung 3 for sheds and expired deadlines: closed-form Markov over
    /// whatever store backs the server. Bit-identical across backends by
    /// the store-identity contract.
    fn markov(&self, twig: &Twig) -> f64 {
        match self {
            Backend::Memory { store, .. } => {
                markov_estimate_store(store.read().tuned().lattice(), twig)
            }
            Backend::Mmap { catalog } => markov_estimate_store(catalog, twig),
        }
    }

    fn labels(&self) -> tl_xml::LabelInterner {
        match self {
            Backend::Memory { store, .. } => store.read().tuned().lattice().labels().clone(),
            Backend::Mmap { catalog } => catalog.labels().clone(),
        }
    }

    fn estimate(&self, twig: &Twig, estimator: Estimator, budget: Budget) -> Response {
        match self {
            Backend::Memory { store, engine } => {
                let opts = EstimateOptions {
                    budget,
                    ..EstimateOptions::default()
                };
                let guard = store.read();
                match engine.estimate_resilient(guard.tuned().lattice(), twig, estimator, &opts) {
                    Ok(est) => Response::Estimate(wire(est)),
                    Err(fault) => Response::fault(fault),
                }
            }
            Backend::Mmap { catalog } => {
                // Catalog parity with the CLI: rung 1 runs unbudgeted,
                // but an already-expired deadline (queue wait ate it)
                // still degrades instead of burning worker time.
                if let Err(cause) = budget.check_deadline() {
                    return Response::Estimate(WireEstimate {
                        value: markov_estimate_store(catalog, twig),
                        degradation: Degradation::Markov,
                        cause: Some(cause),
                    });
                }
                let value = treelattice::estimate_catalog(
                    catalog,
                    twig,
                    estimator,
                    &EstimateOptions::default(),
                );
                Response::Estimate(WireEstimate::exact(value))
            }
        }
    }

    fn truth(&self, twig: &Twig) -> Response {
        let key = key_of(twig);
        let stored = match self {
            Backend::Memory { store, .. } => store.read().tuned().lattice().summary().stored(&key),
            Backend::Mmap { catalog } => match catalog.lookup_bytes(key.as_bytes()) {
                Lookup::Exact(c) => Some(c),
                Lookup::Derivable | Lookup::TooLarge => None,
            },
        };
        Response::Truth { stored }
    }

    fn update(&self, twig: &Twig, true_count: u64, idem: u64, rec: &dyn Recorder) -> Response {
        match self {
            Backend::Memory { store, .. } => {
                let mut guard = store.write();
                match &mut *guard {
                    Store::Plain(tuned) => {
                        tuned.observe(twig, true_count);
                        Response::Updated {
                            generation: tuned.lattice().generation(),
                        }
                    }
                    // The WAL append gates the ack: an append failure is a
                    // typed fault and the observation is NOT applied, so a
                    // client never holds an ack the log cannot replay.
                    Store::Durable(durable) => match durable.apply(twig, true_count, idem, rec) {
                        Ok(applied) => Response::Updated {
                            generation: applied.generation,
                        },
                        Err(fault) => Response::fault(fault),
                    },
                }
            }
            Backend::Mmap { .. } => Response::usage(Fault::parse(
                "update is not supported on the read-only --mmap backend",
            )),
        }
    }
}

fn wire(est: ResilientEstimate) -> WireEstimate {
    WireEstimate {
        value: est.value,
        degradation: est.degradation,
        cause: est.cause,
    }
}

/// Pre-parsed work a queue job carries to a worker.
enum Work {
    Estimate {
        twig: Twig,
        estimator: Estimator,
    },
    Batch {
        twigs: Vec<Twig>,
        estimator: Estimator,
    },
    Truth {
        twig: Twig,
    },
    Update {
        twig: Twig,
        true_count: u64,
        idem: u64,
    },
}

struct Job {
    work: Work,
    budget: Budget,
    admitted: Instant,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    backend: Backend,
    queue: FairQueue<Job>,
    budgets: Vec<BudgetSpec>,
    rec: Arc<MetricsRecorder>,
    shutting_down: AtomicBool,
    /// Per-connection idle deadline; zero disables shedding.
    idle_timeout: Duration,
}

impl Shared {
    fn lane_for(&self, tenant: &str) -> usize {
        self.queue
            .lane_of(tenant)
            .or_else(|| self.queue.lane_of(DEFAULT_TENANT))
            .expect("default lane always configured")
    }

    fn parse(&self, query: &str) -> Result<Twig, Response> {
        let mut labels = self.backend.labels();
        parse_twig(query, &mut labels)
            .map_err(|e| Response::usage(Fault::parse(format!("query `{query}`: {e}"))))
    }

    /// The shed answer: rung 3 with provenance, never an untyped error.
    fn shed(&self, work: &Work, refusal: Refusal) -> Response {
        self.rec.add(names::SERVER_SHED, 1);
        let cause = Fault::budget(match refusal {
            Refusal::LaneFull => "shed by admission control: tenant lane full",
            Refusal::Draining => "shed: server draining for shutdown",
        });
        let degraded = |twig: &Twig| WireEstimate {
            value: self.backend.markov(twig),
            degradation: Degradation::Markov,
            cause: Some(cause.clone()),
        };
        match work {
            Work::Estimate { twig, .. } => Response::Estimate(degraded(twig)),
            Work::Batch { twigs, .. } => {
                Response::Batch(twigs.iter().map(|t| Ok(degraded(t))).collect())
            }
            // Truth and update have no degraded form; the refusal itself
            // is the typed answer.
            Work::Truth { .. } | Work::Update { .. } => Response::fault(cause),
        }
    }

    /// Decodes and answers one request body. Blocks until the response
    /// is ready (workers run queued ops; sheds and scrapes are inline).
    fn process(&self, body: &[u8]) -> Response {
        let request = match Request::decode(body) {
            Ok(r) => r,
            Err(fault) => {
                self.rec.add(names::SERVER_RESP_FAULT, 1);
                return Response::fault(fault);
            }
        };
        if let Request::Scrape { .. } = request {
            self.rec.add(names::SERVER_ACCEPTED, 1);
            self.rec
                .gauge(names::SERVER_QUEUE_DEPTH, self.queue.depth() as f64);
            if let Backend::Memory { store, .. } = &self.backend {
                if let Store::Durable(durable) = &*store.read() {
                    self.rec
                        .gauge("server.wal.last_seq", durable.last_seq() as f64);
                    self.rec
                        .gauge("server.snapshot.seq", durable.snapshot_seq() as f64);
                }
            }
            return Response::Scrape {
                json: self.rec.snapshot().to_json(),
            };
        }
        let lane = self.lane_for(request.tenant());
        let work = match self.build_work(request) {
            Ok(w) => w,
            Err(resp) => {
                self.rec.add(names::SERVER_RESP_FAULT, 1);
                return resp;
            }
        };
        let budget = self.budgets[lane].to_budget();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            work,
            budget,
            admitted: Instant::now(),
            reply: tx,
        };
        match self.queue.enqueue(lane, job) {
            Ok(depth) => {
                self.rec.add(names::SERVER_ACCEPTED, 1);
                if depth > 1 {
                    self.rec.add(names::SERVER_QUEUED, 1);
                }
                self.rec.gauge(names::SERVER_QUEUE_DEPTH, depth as f64);
            }
            Err((job, refusal)) => {
                let resp = self.shed(&job.work, refusal);
                if matches!(resp, Response::Error { .. }) {
                    self.rec.add(names::SERVER_RESP_FAULT, 1);
                } else {
                    self.rec.add(names::SERVER_RESP_DEGRADED, 1);
                }
                return resp;
            }
        }
        match rx.recv() {
            Ok(resp) => resp,
            // Worker pool gone mid-request: only happens in shutdown.
            Err(_) => Response::fault(Fault::timeout("server shut down before answering")),
        }
    }

    fn build_work(&self, request: Request) -> Result<Work, Response> {
        Ok(match request {
            Request::Estimate {
                estimator, query, ..
            } => Work::Estimate {
                twig: self.parse(&query)?,
                estimator,
            },
            Request::EstimateBatch {
                estimator, queries, ..
            } => {
                let mut twigs = Vec::with_capacity(queries.len());
                for q in &queries {
                    twigs.push(self.parse(q)?);
                }
                Work::Batch { twigs, estimator }
            }
            Request::Truth { query, .. } => Work::Truth {
                twig: self.parse(&query)?,
            },
            Request::Update {
                query,
                true_count,
                idem,
                ..
            } => Work::Update {
                twig: self.parse(&query)?,
                true_count,
                idem,
            },
            Request::Scrape { .. } => unreachable!("scrape handled inline"),
        })
    }

    fn run_work(&self, work: &Work, budget: Budget) -> Response {
        match work {
            Work::Estimate { twig, estimator } => self.backend.estimate(twig, *estimator, budget),
            Work::Batch { twigs, estimator } => Response::Batch(
                twigs
                    .iter()
                    .map(|t| match self.backend.estimate(t, *estimator, budget) {
                        Response::Estimate(e) => Ok(e),
                        Response::Error { fault, .. } => Err(fault),
                        _ => unreachable!("estimate returns estimate or error"),
                    })
                    .collect(),
            ),
            Work::Truth { twig } => self.backend.truth(twig),
            Work::Update {
                twig,
                true_count,
                idem,
            } => self
                .backend
                .update(twig, *true_count, *idem, self.rec.as_ref()),
        }
    }

    fn worker_loop(&self) {
        while let Some((lane, job)) = self.queue.dequeue() {
            self.rec
                .gauge(names::SERVER_QUEUE_DEPTH, self.queue.depth() as f64);
            let resp = self.run_work(&job.work, job.budget);
            let us = job.admitted.elapsed().as_micros() as u64;
            self.rec.observe(names::SERVER_LATENCY_US, us);
            self.rec.observe(
                &names::server_tenant_latency(self.queue.tenant_name(lane)),
                us,
            );
            match &resp {
                Response::Error { .. } => self.rec.add(names::SERVER_RESP_FAULT, 1),
                Response::Estimate(e) if e.degradation.is_degraded() => {
                    self.rec.add(names::SERVER_RESP_DEGRADED, 1)
                }
                Response::Batch(items)
                    if items.iter().any(|i| {
                        matches!(i, Ok(e) if e.degradation.is_degraded()) || i.is_err()
                    }) =>
                {
                    self.rec.add(names::SERVER_RESP_DEGRADED, 1)
                }
                _ => {}
            }
            // A gone receiver means the connection died; nothing to do.
            let _ = job.reply.send(resp);
        }
    }
}

/// A running server. Dropping without [`ServerHandle::shutdown`] leaves
/// threads running; call `shutdown` for a clean drain-and-join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn recorder(&self) -> Arc<MetricsRecorder> {
        self.shared.rec.clone()
    }

    /// Flags shutdown without blocking (signal-handler safe side:
    /// the handler only stores a flag; this runs on the main thread).
    pub fn signal_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Stops admitting new work while continuing to serve queued requests
    /// and scrapes — the load-balancer-removal half of a graceful
    /// shutdown. New estimates are answered shed (degraded Markov with a
    /// draining cause), not refused.
    pub fn begin_drain(&self) {
        self.shared.queue.begin_drain();
    }

    /// Graceful shutdown: stop accepting, refuse new admissions, drain
    /// queued work, join the listener and workers, then — on a durable
    /// backend — flush the WAL and publish a final snapshot. An error
    /// from the durable drain is a typed fault (the previous snapshot
    /// and WAL are left intact on disk); the threads are already joined
    /// either way.
    pub fn shutdown(mut self) -> Result<(), Fault> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue.begin_drain();
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.queue.depth() > 0 && Instant::now() < drain_deadline {
            thread::sleep(Duration::from_millis(5));
        }
        self.shared.queue.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Backend::Memory { store, .. } = &self.shared.backend {
            if let Store::Durable(durable) = &mut *store.write() {
                durable.drain(self.shared.rec.as_ref())?;
            }
        }
        Ok(())
    }
}

/// Loads the summary, binds the listener, and spawns the accept loop and
/// worker pool. Returns once the socket is live.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, Fault> {
    let rec = Arc::new(MetricsRecorder::with_schema());
    rec.set_meta("server.summary", config.summary_path.display().to_string());
    rec.set_meta(
        "server.backend",
        if config.mmap { "mmap" } else { "memory" },
    );

    let backend = if config.mmap {
        if config.wal_dir.is_some() {
            return Err(Fault::parse(
                "--wal-dir is incompatible with the read-only --mmap backend",
            ));
        }
        let catalog =
            MmapCatalog::open_observed(&config.summary_path, rec.as_ref()).map_err(|e| {
                Fault::corrupt_summary(format!("{}: {e}", config.summary_path.display()))
            })?;
        Backend::Mmap { catalog }
    } else {
        let bytes = std::fs::read(&config.summary_path).map_err(|e| {
            Fault::corrupt_summary(format!("{}: {e}", config.summary_path.display()))
        })?;
        let lattice = TreeLattice::from_bytes(&bytes).map_err(|e| {
            Fault::corrupt_summary(format!("{}: {e}", config.summary_path.display()))
        })?;
        let engine = EstimationEngine::with_recorder(EngineConfig::default(), rec.clone());
        let store = match &config.wal_dir {
            Some(dir) => {
                let opts = DurableOptions {
                    online_budget: config.online_budget_bytes,
                    policy: config.durability,
                    snapshot_every: config.snapshot_every,
                    ..DurableOptions::default()
                };
                let (durable, report) =
                    DurableLattice::open(dir, Some(&lattice), &opts, rec.as_ref())?;
                rec.set_meta("server.wal_dir", dir.display().to_string());
                rec.set_meta("server.durability", config.durability.to_string());
                rec.set_meta("server.recovery", report.to_string());
                Store::Durable(durable)
            }
            None => Store::Plain(TunedLattice::new(lattice, config.online_budget_bytes)),
        };
        Backend::Memory {
            store: Box::new(RwLock::new(store)),
            engine,
        }
    };

    let mut tenants = config.tenants.clone();
    if !tenants.iter().any(|t| t.config.name == DEFAULT_TENANT) {
        tenants.push(TenantSpec::new(DEFAULT_TENANT, 1, DEFAULT_QUEUE_CAP));
    }
    let lanes: Vec<TenantConfig> = tenants.iter().map(|t| t.config.clone()).collect();
    let budgets: Vec<BudgetSpec> = tenants
        .iter()
        .map(|t| t.budget.unwrap_or(config.default_budget))
        .collect();
    for t in &tenants {
        rec.set_meta(
            format!("server.tenant.{}", t.config.name),
            format!("weight={} cap={}", t.config.weight, t.config.queue_cap),
        );
    }

    let shared = Arc::new(Shared {
        backend,
        queue: FairQueue::new(&lanes),
        budgets,
        rec,
        shutting_down: AtomicBool::new(false),
        idle_timeout: Duration::from_millis(config.idle_timeout_ms),
    });

    let listener = TcpListener::bind(("127.0.0.1", config.port))
        .and_then(|l| {
            l.set_nonblocking(true)?;
            Ok(l)
        })
        .map_err(|e| Fault::new(tl_fault::FaultKind::Timeout, format!("bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| Fault::new(tl_fault::FaultKind::Timeout, format!("local_addr: {e}")))?;

    let workers = if config.workers == 0 {
        thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        config.workers
    };
    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("tl-server-worker-{i}"))
                .spawn(move || shared.worker_loop())
                .expect("spawn worker"),
        );
    }
    {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("tl-server-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept loop"),
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.rec.add(names::SERVER_CONNECTIONS, 1);
                let shared = shared.clone();
                // Connection threads are detached: they poll the
                // shutdown flag via read timeouts and exit on their own.
                let _ = thread::Builder::new()
                    .name("tl-server-conn".into())
                    .spawn(move || connection_loop(stream, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    // Socket-option failures are surfaced, never silently swallowed:
    // a connection that cannot poll (no read timeout) would pin a thread
    // through shutdown, so it is dropped instead of served blind.
    if stream.set_nodelay(true).is_err() {
        shared.rec.add(names::SERVER_SOCKOPT_ERRORS, 1);
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        shared.rec.add(names::SERVER_SOCKOPT_ERRORS, 1);
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut last_activity = Instant::now();
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(FrameError::Eof) => return,
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Idle deadline: shed half-open / slow-loris peers
                // deterministically instead of holding a thread forever.
                if !shared.idle_timeout.is_zero() && last_activity.elapsed() >= shared.idle_timeout
                {
                    shared.rec.add(names::SERVER_IDLE_CLOSED, 1);
                    return;
                }
                continue;
            }
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Corrupt(fault)) => {
                // The stream cannot be resynchronized after garbage:
                // answer the typed fault, then close.
                shared.rec.add(names::SERVER_RESP_FAULT, 1);
                let resp = Response::fault(fault);
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
        };
        last_activity = Instant::now();
        let resp = shared.process(&body);
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
    }
}
