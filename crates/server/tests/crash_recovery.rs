//! Kill-tested recovery: a real `tl-server` process is killed with
//! SIGKILL mid-update-storm, restarted over the same durability
//! directory, and its recovered state is checked bit-for-bit against a
//! never-crashed replica fed the same acknowledged prefix.
//!
//! The acked prefix is the contract: after recovery `server.wal.last_seq`
//! must cover every acknowledged update (an unacked in-flight record may
//! legally land as one extra), and the stored count for the stormed twig
//! must be exactly the count carried by record `last_seq` — the value a
//! synchronous replay of that prefix produces.

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tl_server::{Client, ClientConfig};
use tl_xml::{parse_document, ParseOptions};
use treelattice::{BuildConfig, TreeLattice};

const STORM_QUERY: &str = "a[b][e]";

fn sample_lattice() -> TreeLattice {
    let mut s = String::from("<r>");
    for _ in 0..8 {
        s.push_str("<a><b><c/><d/></b><e/></a><f><a><b/></a></f>");
    }
    s.push_str("</r>");
    let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
    TreeLattice::build(&doc, &BuildConfig::with_k(3))
}

/// The deterministic count carried by storm update `i` (1-based seq).
fn storm_count(seq: u64) -> u64 {
    10_000 + seq
}

fn spawn_server(summary: &std::path::Path, wal_dir: &std::path::Path) -> (Child, String) {
    let port_file = summary.with_extension("port");
    std::fs::remove_file(&port_file).ok();
    let child = Command::new(env!("CARGO_BIN_EXE_tl-server"))
        .args([
            "serve",
            summary.to_str().unwrap(),
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--workers",
            "2",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--durability",
            "strict",
            "--snapshot-every",
            "16",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut addr = String::new();
    for _ in 0..200 {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!addr.is_empty(), "server never wrote its port file");
    (child, addr.trim().to_owned())
}

fn scrape_gauge(client: &mut Client, name: &str) -> f64 {
    let snap = tl_obs::Snapshot::from_json(&client.scrape().expect("scrape")).unwrap();
    snap.gauges.get(name).copied().unwrap_or(f64::NAN)
}

#[test]
fn kill9_mid_storm_recovers_exactly_the_acknowledged_prefix() {
    let lattice = sample_lattice();
    for seed in [1u64, 7, 42] {
        let dir = std::env::temp_dir().join(format!("tl-crash-{}-{}", seed, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let summary = dir.join("summary.tlat");
        std::fs::write(&summary, lattice.to_bytes()).unwrap();
        let wal_dir = dir.join("wal");

        let (mut child, addr) = spawn_server(&summary, &wal_dir);

        // Storm from a background thread with a fail-fast client (no
        // transport retries: each ack maps 1:1 to a WAL sequence). The
        // shared counter lets the killer wait for a real ack first.
        let storm_addr = addr.clone();
        let progress = Arc::new(AtomicU64::new(0));
        let storm_progress = Arc::clone(&progress);
        let storm = std::thread::spawn(move || {
            let mut client = Client::connect_with(
                storm_addr,
                "default",
                ClientConfig {
                    max_retries: 0,
                    request_timeout: Duration::from_secs(10),
                    ..ClientConfig::default()
                },
            )
            .expect("storm connect");
            let mut acked = 0u64;
            for i in 1..=100_000u64 {
                match client.update(STORM_QUERY, storm_count(i)) {
                    Ok(_) => {
                        acked = i;
                        storm_progress.store(i, Ordering::Release);
                    }
                    Err(_) => break,
                }
            }
            acked
        });

        // Kill -9 at a seed-dependent point mid-storm: no drain, no
        // snapshot, no flush — whatever the WAL holds is the truth. Wait
        // for the first acknowledgement before starting the clock so a
        // slow strict-fsync start (or a loaded host) can't kill the
        // server with nothing stormed yet.
        for _ in 0..400 {
            if progress.load(Ordering::Acquire) > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(
            progress.load(Ordering::Acquire) > 0,
            "seed {seed}: storm never got an ack"
        );
        std::thread::sleep(Duration::from_millis(50 + seed * 37));
        let pid = child.id().to_string();
        assert!(Command::new("kill")
            .args(["-KILL", &pid])
            .status()
            .unwrap()
            .success());
        let _ = child.wait().unwrap();
        let acked = storm.join().unwrap();
        assert!(acked > 0, "seed {seed}: storm never got an ack");

        // Restart over the same directory and interrogate the recovered
        // state.
        let (mut child, addr) = spawn_server(&summary, &wal_dir);
        let mut client = Client::connect(&*addr, "default").unwrap();
        let last_seq = scrape_gauge(&mut client, "server.wal.last_seq") as u64;
        // Every ack is durable; at most one in-flight (written but never
        // acked) record may additionally have survived the kill.
        assert!(
            last_seq == acked || last_seq == acked + 1,
            "seed {seed}: recovered last_seq {last_seq} vs acked {acked}"
        );
        // Bit-exactness of the prefix: a never-crashed replica that
        // applied records 1..=last_seq stores exactly storm_count(last_seq).
        assert_eq!(
            client.truth(STORM_QUERY).unwrap(),
            Some(storm_count(last_seq)),
            "seed {seed}: recovered count diverges from synchronous replay"
        );

        // The recovered server keeps serving and keeps its durability: a
        // post-recovery update acks and a clean drain snapshots it.
        client.update(STORM_QUERY, 777).unwrap();
        assert_eq!(client.truth(STORM_QUERY).unwrap(), Some(777));
        drop(client);
        let pid = child.id().to_string();
        assert!(Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success());
        let mut exit = None;
        for _ in 0..200 {
            if let Some(st) = child.try_wait().unwrap() {
                exit = Some(st);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert_eq!(
            exit.expect("no exit after SIGTERM").code(),
            Some(0),
            "seed {seed}: post-recovery drain exits clean"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mid_log_corruption_surfaces_as_typed_fault_exit() {
    // Flip a byte in the middle of a multi-record WAL: the restart must
    // refuse with the fault exit code (3), not serve a wrong summary.
    let lattice = sample_lattice();
    let dir = std::env::temp_dir().join(format!("tl-crash-corrupt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let summary = dir.join("summary.tlat");
    std::fs::write(&summary, lattice.to_bytes()).unwrap();
    let wal_dir = dir.join("wal");

    let (mut child, addr) = spawn_server(&summary, &wal_dir);
    let mut client = Client::connect(&*addr, "default").unwrap();
    for i in 1..=8u64 {
        client.update(STORM_QUERY, storm_count(i)).unwrap();
    }
    drop(client);
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-KILL", &pid])
        .status()
        .unwrap()
        .success());
    let _ = child.wait().unwrap();

    let wal_path = wal_dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    assert!(bytes.len() > 40, "wal holds the storm records");
    // Flip a byte inside the FIRST record's body (offset 10 lands in its
    // seq field, past the 4-byte length prefix). The seven complete
    // records behind it rule out any torn-tail reading: this is mid-log
    // corruption and must be a typed fault.
    bytes[10] ^= 0xff;
    std::fs::write(&wal_path, &bytes).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_tl-server"))
        .args([
            "serve",
            summary.to_str().unwrap(),
            "--port",
            "0",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(3),
        "mid-log corruption is a typed fault, never a silent serve: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("corrupt") || stderr.contains("checksum") || stderr.contains("wal"),
        "stderr names the corruption: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
