//! Durability end-to-end: WAL-gated acks, drain snapshots, recovery
//! across real process restarts, and the client's deadline/retry
//! robustness.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tl_server::{serve, Client, ClientConfig, ClientError, ServerConfig};
use tl_xml::{parse_document, ParseOptions};
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn sample_lattice() -> TreeLattice {
    let mut s = String::from("<r>");
    for _ in 0..8 {
        s.push_str("<a><b><c/><d/></b><e/></a><f><a><b/></a></f>");
    }
    s.push_str("</r>");
    let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
    TreeLattice::build(&doc, &BuildConfig::with_k(3))
}

/// A fresh scratch directory holding the summary plus the WAL dir.
fn scratch(name: &str) -> (std::path::PathBuf, std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "tl-durability-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let summary = dir.join("summary.tlat");
    std::fs::write(&summary, sample_lattice().to_bytes()).unwrap();
    let wal_dir = dir.join("wal");
    (dir, summary, wal_dir)
}

fn durable_config(summary: &std::path::Path, wal_dir: &std::path::Path) -> ServerConfig {
    let mut config = ServerConfig::new(summary);
    config.wal_dir = Some(wal_dir.to_path_buf());
    config.durability = treelattice::DurabilityPolicy::Strict;
    config
}

fn snapshot_files(wal_dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(wal_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("snap-") && !n.ends_with(".tmp"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

#[test]
fn updates_survive_a_clean_drain_and_restart() {
    let (dir, summary, wal_dir) = scratch("drain");
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    client.update("a[b][e]", 123).unwrap();
    client.update("a/b/c", 77).unwrap();
    handle.shutdown().expect("durable drain");
    // The drain published a snapshot and truncated the WAL.
    assert!(
        !snapshot_files(&wal_dir).is_empty(),
        "drain writes a snapshot"
    );
    assert_eq!(std::fs::metadata(wal_dir.join("wal.log")).unwrap().len(), 0);

    // A second server over the same directory sees the observations.
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(123));
    assert_eq!(client.truth("a/b/c").unwrap(), Some(77));
    handle.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retried_update_with_same_idem_key_does_not_double_apply() {
    let (dir, summary, wal_dir) = scratch("idem");
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    let g1 = client.update_with_idem("a[b][e]", 123, 42).unwrap();
    // A retry of the same logical update: acked against the current
    // state, not re-applied (the generation does not move).
    let g2 = client.update_with_idem("a[b][e]", 123, 42).unwrap();
    assert_eq!(g1, g2, "idempotent retry must not bump the generation");
    // A different key is a new observation.
    let g3 = client.update_with_idem("a[b][e]", 200, 43).unwrap();
    assert!(g3 > g2);
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(200));
    handle.shutdown().expect("durable drain");

    // The dedup window survives recovery: replaying an old ack after a
    // restart still cannot double-apply.
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    let g4 = client.update_with_idem("a[b][e]", 123, 42).unwrap();
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(200));
    let _ = g4;
    handle.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrape_exposes_wal_counters_and_seqs() {
    let (dir, summary, wal_dir) = scratch("scrape");
    let mut config = durable_config(&summary, &wal_dir);
    config.snapshot_every = 2;
    let handle = serve(config).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    for (i, q) in ["a", "a/b", "a/b/c"].iter().enumerate() {
        client.update(q, 50 + i as u64).unwrap();
    }
    let snap = tl_obs::Snapshot::from_json(&client.scrape().unwrap()).unwrap();
    assert_eq!(snap.counters["wal.appends"], 3);
    assert!(snap.counters["wal.fsyncs"] >= 3, "strict fsyncs every ack");
    assert!(
        snap.counters["snapshot.writes"] >= 1,
        "snapshot-every=2 fired"
    );
    assert_eq!(snap.counters["wal.append.failures"], 0);
    assert_eq!(snap.gauges["server.wal.last_seq"], 3.0);
    handle.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_dir_with_mmap_is_a_typed_refusal() {
    let (dir, summary, wal_dir) = scratch("mmap-refusal");
    let mut config = durable_config(&summary, &wal_dir);
    config.mmap = true;
    let err = match serve(config) {
        Err(fault) => fault,
        Ok(_) => panic!("mmap + wal-dir cannot serve"),
    };
    assert!(err.message.contains("mmap"), "{}", err.message);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn client_deadline_expires_against_a_silent_peer() {
    // A listener that accepts and never answers: the per-request
    // deadline — not a hardwired 60s socket timeout — bounds the call.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let mut held = Vec::new();
        listener.set_nonblocking(true).unwrap();
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_secs(5) {
            if let Ok((s, _)) = listener.accept() {
                held.push(s);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    let mut client = Client::connect_with(
        addr,
        "default",
        ClientConfig {
            request_timeout: Duration::from_millis(300),
            max_retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let t0 = std::time::Instant::now();
    let err = client.estimate(Estimator::Recursive, "a").unwrap_err();
    assert!(matches!(err, ClientError::Deadline), "got {err}");
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "deadline must cut the wait well under the old 60s timeout"
    );
    silent.join().unwrap();
}

#[test]
fn client_reconnects_across_a_server_restart() {
    let (dir, summary, wal_dir) = scratch("reconnect");
    let first = serve(durable_config(&summary, &wal_dir)).unwrap();
    let addr = first.addr();
    let mut client = Client::connect_with(
        addr,
        "default",
        ClientConfig {
            request_timeout: Duration::from_secs(10),
            max_retries: 8,
            backoff_base: Duration::from_millis(10),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.update("a[b][e]", 5).unwrap();
    first.shutdown().expect("durable drain");
    // Let the first server's detached connection thread notice the
    // shutdown flag and close its socket; until then the old connection
    // can still answer one last typed "draining" refusal.
    std::thread::sleep(Duration::from_millis(300));

    // Same port, fresh process-equivalent: the client's retry loop rides
    // over the gap without the caller doing anything. (Rebinding the
    // just-freed port can transiently fail; retry until it sticks.)
    let second = {
        let mut handle = None;
        for _ in 0..100 {
            let mut config = durable_config(&summary, &wal_dir);
            config.port = addr.port();
            match serve(config) {
                Ok(h) => {
                    handle = Some(h);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        handle.expect("port never became rebindable")
    };
    let stored = client.truth("a[b][e]").unwrap();
    assert_eq!(stored, Some(5), "reconnect + recovery preserved the ack");
    second.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Binary-level drain tests (SIGTERM path, exit codes, fail-points).
// ---------------------------------------------------------------------

fn spawn_server(
    summary: &std::path::Path,
    wal_dir: &std::path::Path,
    envs: &[(&str, &str)],
) -> (Child, String) {
    let port_file = summary.with_extension("port");
    std::fs::remove_file(&port_file).ok();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tl-server"));
    cmd.args([
        "serve",
        summary.to_str().unwrap(),
        "--port",
        "0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--workers",
        "2",
        "--wal-dir",
        wal_dir.to_str().unwrap(),
        "--durability",
        "strict",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().unwrap();
    let mut addr = String::new();
    for _ in 0..200 {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!addr.is_empty(), "server never wrote its port file");
    (child, addr.trim().to_owned())
}

fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    for _ in 0..200 {
        if let Some(st) = child.try_wait().unwrap() {
            return st;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("server did not exit after SIGTERM");
}

#[test]
fn sigterm_drain_with_inflight_updates_snapshots_and_exits_0() {
    let (dir, summary, wal_dir) = scratch("sigterm");
    let (mut child, addr) = spawn_server(&summary, &wal_dir, &[]);

    // Storm updates from a background thread while the signal lands, so
    // the drain genuinely races in-flight acks.
    let storm_addr = addr.clone();
    let storm = std::thread::spawn(move || {
        let mut client = Client::connect(storm_addr, "default").expect("storm connect");
        let mut acked = 0u64;
        for i in 0..10_000u64 {
            match client.update("a[b][e]", 1000 + i) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        acked
    });
    std::thread::sleep(Duration::from_millis(150));
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let exit = wait_exit(&mut child);
    let acked = storm.join().unwrap();
    assert!(acked > 0, "storm never got an ack");
    assert_eq!(exit.code(), Some(0), "drain with in-flight updates exits 0");
    assert!(
        !snapshot_files(&wal_dir).is_empty(),
        "drain published a final snapshot"
    );
    assert_eq!(
        std::fs::metadata(wal_dir.join("wal.log")).unwrap().len(),
        0,
        "drain truncated the WAL after the snapshot"
    );

    // Restart: the snapshot carries every acked update.
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    let stored = client
        .truth("a[b][e]")
        .unwrap()
        .expect("observed twig is stored");
    assert!(
        (1000..1000 + 10_000).contains(&stored),
        "recovered count {stored} must be one the storm acked"
    );
    handle.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_snapshot_fault_exits_3_and_preserves_wal_and_snapshots() {
    let (dir, summary, wal_dir) = scratch("drain-fault");
    // First run: clean, leaves snapshot #1 behind.
    let (mut child, addr) = spawn_server(&summary, &wal_dir, &[]);
    let mut client = Client::connect(&*addr, "default").unwrap();
    client.update("a/b/c", 7).unwrap();
    drop(client);
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    assert_eq!(wait_exit(&mut child).code(), Some(0));
    let snaps_before = snapshot_files(&wal_dir);
    assert!(!snaps_before.is_empty());

    // Second run: the drain's snapshot hits a fail-point. The server must
    // exit with the fault code (3) and leave the previous snapshot and
    // the WAL intact — nothing acknowledged is lost.
    let (mut child, addr) = spawn_server(
        &summary,
        &wal_dir,
        &[("TL_CHAOS", "snapshot.before_rename=always")],
    );
    let mut client = Client::connect(&*addr, "default").unwrap();
    client.update("a/b/c", 8).unwrap();
    client.update("a[b][e]", 9).unwrap();
    drop(client);
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let exit = wait_exit(&mut child);
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .ok();
    assert_eq!(
        exit.code(),
        Some(3),
        "failed drain is a typed fault exit: {stderr}"
    );
    assert!(stderr.contains("drain"), "stderr names the drain: {stderr}");
    assert_eq!(
        snapshot_files(&wal_dir),
        snaps_before,
        "failed drain must not disturb existing snapshots"
    );
    assert!(
        std::fs::metadata(wal_dir.join("wal.log")).unwrap().len() > 0,
        "the WAL still covers the un-snapshotted acks"
    );

    // Recovery (no chaos) replays the tail: both acks are there.
    let handle = serve(durable_config(&summary, &wal_dir)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();
    assert_eq!(client.truth("a/b/c").unwrap(), Some(8));
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(9));
    handle.shutdown().expect("durable drain");
    std::fs::remove_dir_all(&dir).ok();
}
