//! End-to-end tests: a real server on an ephemeral port, driven through
//! the blocking client.

use std::time::Duration;

use tl_fault::{Degradation, FaultKind};
use tl_server::{serve, BudgetSpec, Client, ClientError, ServerConfig, TenantSpec};
use tl_xml::{parse_document, ParseOptions};
use treelattice::{
    estimate_catalog, markov_estimate_store, BuildConfig, Catalog, EstimateOptions, Estimator,
    MmapCatalog, TreeLattice,
};

fn sample_lattice() -> TreeLattice {
    let mut s = String::from("<r>");
    for _ in 0..8 {
        s.push_str("<a><b><c/><d/></b><e/></a><f><a><b/></a></f>");
    }
    s.push_str("</r>");
    let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
    TreeLattice::build(&doc, &BuildConfig::with_k(3))
}

fn write_summary(lattice: &TreeLattice, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tl-server-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, lattice.to_bytes()).unwrap();
    path
}

const QUERIES: &[&str] = &[
    "a",
    "a/b",
    "a/b/c",
    "a[b[c][d]][e]",
    "f/a/b",
    "//a/b",
    "nosuch",
];

#[test]
fn estimates_are_bit_identical_to_in_process_engine() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "bitid.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    for &query in QUERIES {
        let twig = lattice.parse_query(query).unwrap();
        for est in Estimator::ALL {
            let local = lattice.estimate(&twig, est);
            let remote = client.estimate(est, query).unwrap();
            assert_eq!(remote.degradation, Degradation::None, "{est} {query}");
            assert_eq!(
                remote.value.to_bits(),
                local.to_bits(),
                "{est} {query}: server {} vs local {local}",
                remote.value
            );
        }
    }
    handle.shutdown().expect("clean drain");
}

#[test]
fn batch_matches_singles() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "batch.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();
    let batch = client
        .estimate_batch(Estimator::RecursiveVoting, &queries)
        .unwrap();
    assert_eq!(batch.len(), queries.len());
    for (q, item) in queries.iter().zip(&batch) {
        let single = client.estimate(Estimator::RecursiveVoting, q).unwrap();
        let item = item.as_ref().unwrap();
        assert_eq!(item.value.to_bits(), single.value.to_bits(), "{q}");
    }
    handle.shutdown().expect("clean drain");
}

#[test]
fn truth_update_and_generation_bump() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "truth.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    // Level-1 patterns are always stored exactly.
    let stored = client.truth("a").unwrap();
    assert_eq!(stored, Some(16), "16 <a> elements in the sample doc");

    // Feed back a truth the summary does not hold; it becomes stored.
    assert_eq!(client.truth("a[b][e]").unwrap().is_some(), {
        use tl_twig::canonical::key_of;
        lattice
            .summary()
            .stored(&key_of(&lattice.parse_query("a[b][e]").unwrap()))
            .is_some()
    });
    let g1 = client.update("a[b][e]", 123).unwrap();
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(123));
    let g2 = client.update("a[b][e]", 124).unwrap();
    assert!(g2 > g1, "each observation bumps the generation");
    assert_eq!(client.truth("a[b][e]").unwrap(), Some(124));
    handle.shutdown().expect("clean drain");
}

#[test]
fn bad_query_is_usage_not_fault() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "usage.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    let err = client.estimate(Estimator::Recursive, "a[[b").unwrap_err();
    match err {
        ClientError::Protocol(fault) => assert_eq!(fault.kind, FaultKind::Parse),
        other => panic!("expected protocol fault, got {other}"),
    }
    // The connection survives a usage error.
    assert!(client.estimate(Estimator::Recursive, "a").is_ok());
    handle.shutdown().expect("clean drain");
}

#[test]
fn drained_server_sheds_with_markov_provenance() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "shed.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    handle.begin_drain();
    let est = client
        .estimate(Estimator::RecursiveVoting, "a/b/c")
        .unwrap();
    assert_eq!(est.degradation, Degradation::Markov);
    let cause = est.cause.expect("shed carries its cause");
    assert_eq!(cause.kind, FaultKind::BudgetExhausted);
    assert!(cause.message.contains("draining"), "{}", cause.message);
    // The shed value is the closed-form Markov product, bit-for-bit.
    let twig = lattice.parse_query("a/b/c").unwrap();
    assert_eq!(
        est.value.to_bits(),
        markov_estimate_store(&lattice, &twig).to_bits()
    );

    // Scrape bypasses admission control and still works while draining.
    let snap = tl_obs::Snapshot::from_json(&client.scrape().unwrap()).unwrap();
    assert!(snap.counters["server.requests.shed"] >= 1);
    handle.shutdown().expect("clean drain");
}

#[test]
fn scrape_exposes_server_metrics() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "scrape.tlat");
    let handle = serve(ServerConfig::new(&path)).unwrap();
    let mut client = Client::connect(handle.addr(), "ops").unwrap();

    for _ in 0..5 {
        client.estimate(Estimator::Recursive, "a/b").unwrap();
    }
    let snap = tl_obs::Snapshot::from_json(&client.scrape().unwrap()).unwrap();
    assert!(snap.counters["server.requests.accepted"] >= 5);
    assert!(snap.counters["server.connections"] >= 1);
    assert_eq!(snap.counters["server.responses.fault"], 0);
    assert!(snap.histograms["server.latency_us"].count >= 5);
    // Unconfigured tenant names ride the default lane.
    assert!(snap.histograms["server.tenant.default.latency_us"].count >= 5);
    handle.shutdown().expect("clean drain");
}

#[test]
fn mmap_backend_serves_and_refuses_update() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "mmap.tlat");
    let mut config = ServerConfig::new(&path);
    config.mmap = true;
    let handle = serve(config).unwrap();
    let mut client = Client::connect(handle.addr(), "default").unwrap();

    let catalog = MmapCatalog::open(&path).unwrap();
    for &query in QUERIES {
        let mut labels = catalog.labels().clone();
        let twig = tl_twig::parse_twig(query, &mut labels).unwrap();
        let local = estimate_catalog(
            &catalog,
            &twig,
            Estimator::FixSized,
            &EstimateOptions::default(),
        );
        let remote = client.estimate(Estimator::FixSized, query).unwrap();
        assert_eq!(remote.value.to_bits(), local.to_bits(), "{query}");
    }
    assert_eq!(client.truth("a").unwrap(), Some(16));

    match client.update("a/b", 7).unwrap_err() {
        ClientError::Protocol(fault) => {
            assert!(fault.message.contains("mmap"), "{}", fault.message)
        }
        other => panic!("expected typed refusal, got {other}"),
    }
    handle.shutdown().expect("clean drain");
}

#[test]
fn per_tenant_deadline_budget_degrades_with_provenance() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "budget.tlat");
    let mut config = ServerConfig::new(&path);
    // A zero-millisecond deadline: expired by the time a worker picks the
    // job up, so rung 1 trips and the ladder answers degraded.
    let mut tenant = TenantSpec::new("strict", 1, 64);
    tenant.budget = Some(BudgetSpec {
        time_limit_ms: Some(0),
        ..BudgetSpec::default()
    });
    config.tenants = vec![tenant];
    let handle = serve(config).unwrap();
    let mut client = Client::connect(handle.addr(), "strict").unwrap();

    let est = client
        .estimate(Estimator::RecursiveVoting, "a[b[c][d]][e]")
        .unwrap();
    assert!(est.degradation.is_degraded(), "got {:?}", est.degradation);
    assert!(est.cause.is_some());
    assert!(est.value.is_finite() && est.value >= 0.0);

    // An unlimited tenant on the same server still gets the exact path.
    let mut relaxed = Client::connect(handle.addr(), "default").unwrap();
    let exact = relaxed
        .estimate(Estimator::RecursiveVoting, "a[b[c][d]][e]")
        .unwrap();
    assert_eq!(exact.degradation, Degradation::None);
    handle.shutdown().expect("clean drain");
}

#[test]
fn binary_smoke_port_file_and_sigterm() {
    let lattice = sample_lattice();
    let path = write_summary(&lattice, "smoke.tlat");
    let port_file = path.with_extension("port");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tl-server"))
        .args([
            "serve",
            path.to_str().unwrap(),
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the ephemeral port to be published.
    let mut addr = String::new();
    for _ in 0..100 {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(!addr.is_empty(), "server never wrote its port file");

    let mut client = Client::connect(addr.trim(), "default").unwrap();
    let est = client.estimate(Estimator::RecursiveVoting, "a/b").unwrap();
    assert!(est.value > 0.0);

    // SIGTERM → drain → exit 0.
    let pid = child.id().to_string();
    let status = std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap();
    assert!(status.success());
    let mut exit = None;
    for _ in 0..100 {
        if let Some(st) = child.try_wait().unwrap() {
            exit = Some(st);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let exit = exit.expect("server did not exit after SIGTERM");
    assert_eq!(exit.code(), Some(0), "clean shutdown exits 0");
}
