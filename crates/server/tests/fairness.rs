//! Weighted-fairness guarantees: a flooding tenant cannot starve a
//! trickle tenant past the configured weight ratio.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tl_server::{FairQueue, TenantConfig};

/// Deterministic saturation model: both lanes are refilled after every
/// dispatch, so the scheduler always has a choice. Over any window the
/// service counts must match the weight ratio, and the gap between
/// consecutive trickle dispatches is bounded by the ratio — the
/// no-starvation property.
#[test]
fn flooding_tenant_bounded_by_weight_ratio() {
    let flood_weight = 4u32;
    let trickle_weight = 1u32;
    let q = FairQueue::new(&[
        TenantConfig::new("flood", flood_weight, 1024),
        TenantConfig::new("trickle", trickle_weight, 1024),
    ]);
    // Prime both lanes.
    for i in 0..8u32 {
        q.enqueue(0, i).unwrap();
        q.enqueue(1, i).unwrap();
    }

    let rounds = 1000usize;
    let mut served = [0usize; 2];
    let mut since_trickle = 0usize;
    let mut max_gap = 0usize;
    for i in 0..rounds {
        let (lane, _) = q.dequeue().unwrap();
        served[lane] += 1;
        if lane == 1 {
            since_trickle = 0;
        } else {
            since_trickle += 1;
            max_gap = max_gap.max(since_trickle);
        }
        // Keep both lanes saturated: the flood refills aggressively, the
        // trickle always has one waiting.
        q.enqueue(0, i as u32).unwrap();
        q.enqueue(1, i as u32).unwrap();
    }

    let ratio = served[0] as f64 / served[1] as f64;
    let expect = f64::from(flood_weight) / f64::from(trickle_weight);
    assert!(
        (ratio - expect).abs() / expect < 0.05,
        "service ratio {ratio:.2} deviates from weight ratio {expect:.2}"
    );
    // Starvation bound: between two trickle dispatches the flood gets at
    // most ceil(w_f / w_t) + 1 turns.
    let bound = (flood_weight as usize).div_ceil(trickle_weight as usize) + 1;
    assert!(
        max_gap <= bound,
        "trickle starved for {max_gap} consecutive dispatches (bound {bound})"
    );
}

/// Threaded version: a flooder hammers its lane from four threads while
/// a trickle tenant keeps a shallow queue. A single consumer drains in
/// WFQ order. The trickle tenant's share of service must stay at or
/// above its weight share whenever it has work queued.
#[test]
fn trickle_tenant_not_starved_under_live_flood() {
    let q = Arc::new(FairQueue::new(&[
        TenantConfig::new("flood", 3, 64),
        TenantConfig::new("trickle", 1, 64),
    ]));
    let stop = Arc::new(AtomicBool::new(false));

    let mut producers = Vec::new();
    for _ in 0..4 {
        let q = q.clone();
        let stop = stop.clone();
        producers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Saturate the flood lane; refusals just spin.
                let _ = q.enqueue(0, 0u32);
            }
        }));
    }
    {
        let q = q.clone();
        let stop = stop.clone();
        producers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = q.enqueue(1, 1u32);
                thread::sleep(Duration::from_micros(200));
            }
        }));
    }

    // Consume for a fixed number of dispatches, tracking shares.
    let mut served = [0usize; 2];
    let mut trickle_waits = 0usize;
    for _ in 0..4000 {
        let (lane, _) = q.dequeue().unwrap();
        served[lane] += 1;
        // Count dispatches where trickle work was available but the
        // flood was served: these are the only moments fairness is
        // actually tested.
        if lane == 0 {
            trickle_waits += 1;
        } else {
            trickle_waits = 0;
        }
        // With weights 3:1 and trickle backlogged, the flood can never
        // take more than 4 consecutive dispatches while trickle waits
        // longer than the ratio allows. Trickle may legitimately idle
        // (its producer sleeps), so only a gross violation fails.
        assert!(
            trickle_waits < 2000,
            "trickle tenant starved: flood took {trickle_waits} consecutive dispatches"
        );
    }
    stop.store(true, Ordering::Relaxed);
    // Unblock any producer stuck on a full lane (enqueue never blocks,
    // so a join is enough).
    for p in producers {
        p.join().unwrap();
    }

    // The trickle producer enqueues ~5k/s; the consumer drains far
    // faster, so flood dominates — but trickle must still be served.
    assert!(served[1] > 0, "trickle tenant got zero service under flood");
}
