//! Property tests for the tl-wire/1 frame and body codecs: round trips
//! are lossless (estimate values bit-for-bit), and any single-bit flip or
//! truncation of a frame surfaces as a typed parse [`Fault`] — never a
//! panic, never a silently wrong message. Mirrors the summary-frame
//! checksum suite.

use proptest::prelude::*;

use tl_fault::{Degradation, Fault, FaultKind, Outcome};
use tl_server::protocol::{read_frame, write_frame, FrameError, Request, Response, WireEstimate};
use treelattice::Estimator;

fn arb_estimator() -> impl Strategy<Value = Estimator> {
    prop_oneof![
        Just(Estimator::Recursive),
        Just(Estimator::RecursiveVoting),
        Just(Estimator::FixSized),
        Just(Estimator::FixSizedVoting),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    // Mixed ASCII and multi-byte code points so length-prefixed UTF-8
    // encoding is exercised beyond the single-byte case.
    proptest::collection::vec(any::<u16>(), 0..24).prop_map(|cs| {
        cs.into_iter()
            .map(|c| char::from_u32(u32::from(c)).unwrap_or('\u{fffd}'))
            .collect()
    })
}

fn arb_option_fault() -> impl Strategy<Value = Option<Fault>> {
    prop_oneof![Just(None), arb_fault().prop_map(Some),]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let est = arb_estimator();
    prop_oneof![
        (arb_string(), arb_estimator(), arb_string()).prop_map(|(tenant, estimator, query)| {
            Request::Estimate {
                tenant,
                estimator,
                query,
            }
        }),
        (
            arb_string(),
            est,
            proptest::collection::vec(arb_string(), 0..8)
        )
            .prop_map(|(tenant, estimator, queries)| Request::EstimateBatch {
                tenant,
                estimator,
                queries,
            }),
        (arb_string(), arb_string()).prop_map(|(tenant, query)| Request::Truth { tenant, query }),
        (arb_string(), arb_string(), any::<u64>(), any::<u64>()).prop_map(
            |(tenant, query, true_count, idem)| Request::Update {
                tenant,
                query,
                true_count,
                idem,
            },
        ),
        arb_string().prop_map(|tenant| Request::Scrape { tenant }),
    ]
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    let kind = prop_oneof![
        Just(FaultKind::Parse),
        Just(FaultKind::BudgetExhausted),
        Just(FaultKind::GroupTooLarge),
        Just(FaultKind::CorruptSummary),
        Just(FaultKind::WorkerPanic),
        Just(FaultKind::Timeout),
    ];
    (kind, arb_string()).prop_map(|(kind, message)| Fault::new(kind, message))
}

fn arb_estimate() -> impl Strategy<Value = WireEstimate> {
    let degradation = prop_oneof![
        Just(Degradation::None),
        (2usize..64).prop_map(|k| Degradation::ReducedK { k }),
        Just(Degradation::Markov),
    ];
    (any::<u64>(), degradation, arb_option_fault()).prop_map(|(bits, degradation, cause)| {
        WireEstimate {
            value: f64::from_bits(bits),
            degradation,
            cause,
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_estimate().prop_map(Response::Estimate),
        proptest::collection::vec(
            prop_oneof![arb_estimate().prop_map(Ok), arb_fault().prop_map(Err)],
            0..6
        )
        .prop_map(Response::Batch),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)]
            .prop_map(|stored| Response::Truth { stored }),
        any::<u64>().prop_map(|generation| Response::Updated { generation }),
        arb_string().prop_map(|json| Response::Scrape { json }),
        arb_fault().prop_map(|fault| Response::Error {
            outcome: Outcome::UsageError,
            fault
        }),
        arb_fault().prop_map(|fault| Response::Error {
            outcome: Outcome::Fault,
            fault
        }),
    ]
}

/// Value equality that treats NaN bit patterns as equal by bits — the
/// wire carries `f64::to_bits`, so NaN payloads round-trip exactly even
/// though `==` on NaN is false.
fn responses_equal(a: &Response, b: &Response) -> bool {
    fn est_eq(x: &WireEstimate, y: &WireEstimate) -> bool {
        x.value.to_bits() == y.value.to_bits()
            && x.degradation == y.degradation
            && x.cause == y.cause
    }
    match (a, b) {
        (Response::Estimate(x), Response::Estimate(y)) => est_eq(x, y),
        (Response::Batch(xs), Response::Batch(ys)) => {
            xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| match (x, y) {
                    (Ok(x), Ok(y)) => est_eq(x, y),
                    (Err(x), Err(y)) => x == y,
                    _ => false,
                })
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn request_round_trip(req in arb_request()) {
        let body = req.encode();
        let back = Request::decode(&body).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_round_trip(resp in arb_response()) {
        let body = resp.encode();
        let back = Response::decode(&body).unwrap();
        prop_assert!(responses_equal(&back, &resp));
    }

    #[test]
    fn framed_round_trip(req in arb_request()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    /// Any single flipped bit anywhere in the frame — length prefix,
    /// body, or checksum — is detected as a typed parse fault.
    #[test]
    fn bit_flip_is_a_typed_fault(req in arb_request(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let idx = ((wire.len() - 1) as f64 * byte_frac) as usize;
        wire[idx] ^= 1 << bit;
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Corrupt(f)) => prop_assert_eq!(f.kind, FaultKind::Parse),
            Ok(_) => prop_assert!(false, "flipped bit at {} accepted", idx),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Truncating the frame at any point is either a clean EOF (cut at a
    /// frame boundary, i.e. nothing sent) or a typed parse fault.
    #[test]
    fn truncation_is_typed(req in arb_request(), keep_frac in 0.0f64..1.0) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let keep = ((wire.len() - 1) as f64 * keep_frac) as usize;
        match read_frame(&mut &wire[..keep]) {
            Err(FrameError::Eof) => prop_assert_eq!(keep, 0),
            Err(FrameError::Corrupt(f)) => prop_assert_eq!(f.kind, FaultKind::Parse),
            Ok(_) => prop_assert!(false, "truncated frame accepted"),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Arbitrary garbage fed to the body decoders never panics; it
    /// either decodes or comes back as a typed fault.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// A flipped bit in the *body* of a valid frame, re-framed with a
    /// fresh checksum, must still never panic the body decoder (it may
    /// decode to a different valid message or fault — both are typed).
    #[test]
    fn body_decoder_survives_reframed_corruption(
        req in arb_request(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut body = req.encode();
        let idx = ((body.len() - 1) as f64 * byte_frac) as usize;
        body[idx] ^= 1 << bit;
        let _ = Request::decode(&body);
    }
}
