//! Canonical encoding of unordered labeled twigs.
//!
//! Definition 1's match semantics are unordered: sibling order in the query
//! does not affect selectivity. The lattice summary must therefore key
//! patterns by their isomorphism class. We use the classic recursive
//! canonical form: the encoding of a node is its label followed by the
//! lexicographically *sorted* encodings of its children, wrapped in
//! open/close sentinels. Two twigs are isomorphic iff their encodings are
//! byte-equal.
//!
//! Labels are written as fixed-width big-endian `u32`s, so label bytes can
//! never be confused with the sentinels (`0x01` open, `0x02` close are legal
//! label bytes but appear at fixed offsets within each node record).

use std::fmt;

use serde::{Deserialize, Serialize};
use tl_xml::LabelId;

use crate::twig::{Twig, TwigNodeId};

/// A canonical key for a twig: byte-equal exactly for isomorphic twigs.
///
/// `TwigKey` is the hash key of the lattice summary. It also orders twigs
/// (lexicographically by encoding), which gives mining a deterministic
/// candidate order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TwigKey(Box<[u8]>);

impl TwigKey {
    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of nodes in the encoded twig (each node contributes exactly
    /// 6 bytes: 4 label bytes + open + close).
    pub fn node_count(&self) -> usize {
        self.0.len() / 6
    }

    /// The label of the encoded twig's root.
    pub fn root_label(&self) -> LabelId {
        debug_assert!(self.0.len() >= 6);
        LabelId(u32::from_be_bytes([
            self.0[0], self.0[1], self.0[2], self.0[3],
        ]))
    }

    /// In-memory footprint in bytes (encoding plus the count it maps to),
    /// used for the summary size accounting of Table 3 / Fig. 10.
    pub fn heap_bytes(&self) -> usize {
        self.0.len() + std::mem::size_of::<u64>()
    }

    /// Wraps raw bytes as a key without validation. Intended for
    /// deserialization paths, which should call [`TwigKey::try_decode`] to
    /// validate before trusting the key.
    pub fn from_raw(bytes: Box<[u8]>) -> TwigKey {
        TwigKey(bytes)
    }

    /// Non-panicking decode: returns `None` if the bytes are not a valid
    /// canonical encoding (wrong framing, unbalanced sentinels, or more
    /// than [`crate::twig::MAX_TWIG_NODES`] nodes).
    pub fn try_decode(&self) -> Option<Twig> {
        let b = &self.0;
        if b.len() < 6 || !b.len().is_multiple_of(6) || b.len() / 6 > crate::twig::MAX_TWIG_NODES {
            return None;
        }
        let mut pos = 0usize;
        let root_label = read_label(b, &mut pos);
        if b.get(pos) != Some(&OPEN) {
            return None;
        }
        pos += 1;
        let mut t = Twig::single(root_label);
        let mut stack: Vec<TwigNodeId> = vec![0];
        while !stack.is_empty() {
            match b.get(pos)? {
                &CLOSE => {
                    pos += 1;
                    stack.pop();
                }
                _ => {
                    if pos + 5 > b.len() {
                        return None;
                    }
                    let label = read_label(b, &mut pos);
                    if b.get(pos) != Some(&OPEN) {
                        return None;
                    }
                    pos += 1;
                    let parent = *stack.last().expect("stack non-empty in loop");
                    let id = t.add_child(parent, label);
                    stack.push(id);
                }
            }
        }
        (pos == b.len()).then_some(t)
    }

    /// Decodes the key back into a twig (children in canonical order).
    ///
    /// # Panics
    ///
    /// Panics if the bytes are not a valid encoding (cannot happen for keys
    /// produced by [`key_of`]).
    pub fn decode(&self) -> Twig {
        assert!(self.0.len() >= 6, "corrupt twig key");
        let mut t = Twig::single(self.root_label());
        self.decode_into(&mut t);
        t
    }

    /// Decodes into an existing twig, reusing its buffers. Equivalent to
    /// `*out = self.decode()` but without reallocating the node vectors;
    /// hot estimator loops pass the same scratch twig repeatedly.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TwigKey::decode`].
    pub fn decode_into(&self, out: &mut Twig) {
        decode_bytes_into(&self.0, out);
    }
}

/// [`TwigKey::decode_into`] over raw encoding bytes, for callers (the
/// interner-backed evaluation DAG) that hold an encoding without a boxed key.
///
/// # Panics
///
/// Panics if the bytes are not a valid canonical encoding.
pub fn decode_bytes_into(b: &[u8], out: &mut Twig) {
    assert!(
        b.len() >= 6 && b.len().is_multiple_of(6),
        "corrupt twig key"
    );
    let mut pos = 0usize;
    let root_label = read_label(b, &mut pos);
    assert_eq!(b[pos], OPEN, "corrupt twig key");
    pos += 1;
    out.reset(root_label);
    decode_children(b, &mut pos, out, 0);
    assert_eq!(b[pos], CLOSE, "corrupt twig key");
    pos += 1;
    assert_eq!(pos, b.len(), "trailing bytes in twig key");
}

/// Allocation-free hash-map probes: a `FxHashMap<TwigKey, V>` can be probed
/// by raw encoding bytes. Sound because `TwigKey`'s derived `Hash`/`Eq`
/// forward to the wrapped `[u8]`, so `k.borrow()` hashes and compares
/// identically to `k` itself.
impl std::borrow::Borrow<[u8]> for TwigKey {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

fn read_label(b: &[u8], pos: &mut usize) -> LabelId {
    let l = LabelId(u32::from_be_bytes([
        b[*pos],
        b[*pos + 1],
        b[*pos + 2],
        b[*pos + 3],
    ]));
    *pos += 4;
    l
}

fn decode_children(b: &[u8], pos: &mut usize, t: &mut Twig, parent: TwigNodeId) {
    while *pos < b.len() && b[*pos] != CLOSE {
        let label = read_label(b, pos);
        assert_eq!(b[*pos], OPEN, "corrupt twig key");
        *pos += 1;
        let id = t.add_child(parent, label);
        decode_children(b, pos, t, id);
        assert_eq!(b[*pos], CLOSE, "corrupt twig key");
        *pos += 1;
    }
}

impl fmt::Debug for TwigKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TwigKey({} nodes)", self.node_count())
    }
}

const OPEN: u8 = 0x01;
const CLOSE: u8 = 0x02;

/// Computes the canonical key of `twig`.
///
/// # Examples
///
/// ```
/// use tl_xml::LabelInterner;
/// use tl_twig::{canonical::key_of, Twig};
///
/// let mut it = LabelInterner::new();
/// let (a, b, c) = (it.intern("a"), it.intern("b"), it.intern("c"));
/// // a[b][c] and a[c][b] are isomorphic.
/// let mut t1 = Twig::single(a);
/// t1.add_child(t1.root(), b);
/// t1.add_child(t1.root(), c);
/// let mut t2 = Twig::single(a);
/// t2.add_child(t2.root(), c);
/// t2.add_child(t2.root(), b);
/// assert_eq!(key_of(&t1), key_of(&t2));
/// ```
pub fn key_of(twig: &Twig) -> TwigKey {
    TwigKey(encode_node(twig, twig.root()).into_boxed_slice())
}

/// Canonical key of the subtree of `twig` rooted at `node`.
pub fn key_of_subtree(twig: &Twig, node: TwigNodeId) -> TwigKey {
    TwigKey(encode_node(twig, node).into_boxed_slice())
}

fn encode_node(t: &Twig, n: TwigNodeId) -> Vec<u8> {
    let mut child_encodings: Vec<Vec<u8>> =
        t.children(n).iter().map(|&c| encode_node(t, c)).collect();
    child_encodings.sort_unstable();
    let total: usize = 6 + child_encodings.iter().map(Vec::len).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&t.label(n).0.to_be_bytes());
    out.push(OPEN);
    for ce in child_encodings {
        out.extend_from_slice(&ce);
    }
    out.push(CLOSE);
    out
}

/// A pooled canonical encoder: [`key_of`] without the per-call allocations.
///
/// `key_of` allocates one `Vec<u8>` per node (child encodings collected,
/// sorted, concatenated) and a boxed key for the result. The encoder keeps a
/// pool of child buffers and writes the encoding into a caller-supplied
/// `Vec<u8>`, so a hot loop that encodes millions of sub-twigs reuses the
/// same handful of allocations. Output bytes are identical to `key_of`:
/// children are encoded in twig order into pooled buffers, sorted
/// lexicographically by content (the same comparison `encode_node` applies
/// to its freshly collected vectors), and concatenated.
#[derive(Debug, Default)]
pub struct KeyEncoder {
    /// Free-list of child encoding buffers, recycled across calls.
    pool: Vec<Vec<u8>>,
    /// In-flight child encodings; each recursion level operates on the
    /// suffix it pushed, so nested multi-child nodes nest like stack frames.
    stack: Vec<Vec<u8>>,
}

impl KeyEncoder {
    /// An encoder with empty pools.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the canonical encoding of `twig` into `out` (cleared first).
    /// The bytes equal `key_of(twig).as_bytes()`.
    pub fn encode_into(&mut self, twig: &Twig, out: &mut Vec<u8>) {
        out.clear();
        self.encode_node_into(twig, twig.root(), out);
    }

    /// Writes the canonical encoding of the subtree of `twig` rooted at
    /// `node` into `out` (cleared first). The bytes equal
    /// `key_of_subtree(twig, node).as_bytes()`.
    pub fn encode_subtree_into(&mut self, twig: &Twig, node: TwigNodeId, out: &mut Vec<u8>) {
        out.clear();
        self.encode_node_into(twig, node, out);
    }

    fn encode_node_into(&mut self, t: &Twig, n: TwigNodeId, out: &mut Vec<u8>) {
        out.extend_from_slice(&t.label(n).0.to_be_bytes());
        out.push(OPEN);
        let children = t.children(n);
        match children.len() {
            0 => {}
            // A single child needs no sort: encode it straight into `out`.
            1 => self.encode_node_into(t, children[0], out),
            _ => {
                let start = self.stack.len();
                for i in 0..children.len() {
                    let c = t.children(n)[i];
                    let mut buf = self.pool.pop().unwrap_or_default();
                    buf.clear();
                    self.encode_node_into(t, c, &mut buf);
                    self.stack.push(buf);
                }
                self.stack[start..].sort_unstable();
                for i in start..self.stack.len() {
                    out.extend_from_slice(&self.stack[i]);
                }
                while self.stack.len() > start {
                    self.pool.push(self.stack.pop().expect("suffix non-empty"));
                }
            }
        }
        out.push(CLOSE);
    }
}

/// Returns a structurally canonical copy of `twig`: same isomorphism class,
/// children everywhere in canonical (sorted-encoding) order, nodes numbered
/// in pre-order. Canonical twigs of isomorphic inputs are identical values.
pub fn canonicalize(twig: &Twig) -> Twig {
    key_of(twig).decode()
}

/// Whether two twigs are isomorphic as unordered labeled trees.
pub fn isomorphic(a: &Twig, b: &Twig) -> bool {
    a.len() == b.len() && key_of(a) == key_of(b)
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;

    fn labels(n: usize) -> Vec<LabelId> {
        let mut it = LabelInterner::new();
        (0..n).map(|i| it.intern(&format!("l{i}"))).collect()
    }

    #[test]
    fn sibling_order_is_ignored() {
        let l = labels(3);
        let mut t1 = Twig::single(l[0]);
        t1.add_child(t1.root(), l[1]);
        t1.add_child(t1.root(), l[2]);
        let mut t2 = Twig::single(l[0]);
        t2.add_child(t2.root(), l[2]);
        t2.add_child(t2.root(), l[1]);
        assert!(isomorphic(&t1, &t2));
    }

    #[test]
    fn deep_reordering_is_ignored() {
        let l = labels(4);
        // a[b[c][d]] vs a[b[d][c]]
        let mut t1 = Twig::single(l[0]);
        let b1 = t1.add_child(t1.root(), l[1]);
        t1.add_child(b1, l[2]);
        t1.add_child(b1, l[3]);
        let mut t2 = Twig::single(l[0]);
        let b2 = t2.add_child(t2.root(), l[1]);
        t2.add_child(b2, l[3]);
        t2.add_child(b2, l[2]);
        assert_eq!(key_of(&t1), key_of(&t2));
    }

    #[test]
    fn different_structures_differ() {
        let l = labels(3);
        // a[b[c]] vs a[b][c]
        let mut t1 = Twig::single(l[0]);
        let b = t1.add_child(t1.root(), l[1]);
        t1.add_child(b, l[2]);
        let mut t2 = Twig::single(l[0]);
        t2.add_child(t2.root(), l[1]);
        t2.add_child(t2.root(), l[2]);
        assert_ne!(key_of(&t1), key_of(&t2));
    }

    #[test]
    fn different_labels_differ() {
        let l = labels(3);
        let t1 = Twig::path(&[l[0], l[1]]);
        let t2 = Twig::path(&[l[0], l[2]]);
        assert_ne!(key_of(&t1), key_of(&t2));
    }

    #[test]
    fn node_count_from_key() {
        let l = labels(3);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[1]);
        t.add_child(b, l[2]);
        t.add_child(t.root(), l[2]);
        assert_eq!(key_of(&t).node_count(), 4);
        assert_eq!(key_of(&t).root_label(), l[0]);
    }

    #[test]
    fn decode_round_trips() {
        let l = labels(5);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[4]);
        t.add_child(b, l[2]);
        t.add_child(b, l[1]);
        t.add_child(t.root(), l[3]);
        let key = key_of(&t);
        let decoded = key.decode();
        assert_eq!(decoded.len(), t.len());
        assert_eq!(key_of(&decoded), key);
    }

    #[test]
    fn decode_into_reuses_buffers_and_matches_decode() {
        let l = labels(5);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[4]);
        t.add_child(b, l[2]);
        t.add_child(t.root(), l[3]);
        let big = key_of(&t);
        let small = key_of(&Twig::path(&[l[0], l[1]]));
        let mut scratch = Twig::single(l[0]);
        big.decode_into(&mut scratch);
        assert_eq!(scratch, big.decode());
        // Shrinking reuse: a larger previous decode must not leak nodes.
        small.decode_into(&mut scratch);
        assert_eq!(scratch, small.decode());
        big.decode_into(&mut scratch);
        assert_eq!(key_of(&scratch), big);
    }

    #[test]
    fn canonicalize_is_idempotent_and_deterministic() {
        let l = labels(4);
        let mut t1 = Twig::single(l[0]);
        t1.add_child(t1.root(), l[3]);
        let b1 = t1.add_child(t1.root(), l[1]);
        t1.add_child(b1, l[2]);
        let mut t2 = Twig::single(l[0]);
        let b2 = t2.add_child(t2.root(), l[1]);
        t2.add_child(b2, l[2]);
        t2.add_child(t2.root(), l[3]);
        let c1 = canonicalize(&t1);
        let c2 = canonicalize(&t2);
        assert_eq!(
            c1, c2,
            "canonical copies of isomorphic twigs are equal values"
        );
        assert_eq!(canonicalize(&c1), c1, "idempotent");
    }

    #[test]
    fn identical_sibling_subtrees_allowed() {
        let l = labels(2);
        let mut t = Twig::single(l[0]);
        t.add_child(t.root(), l[1]);
        t.add_child(t.root(), l[1]);
        let key = key_of(&t);
        assert_eq!(key.node_count(), 3);
        assert_eq!(key_of(&key.decode()), key);
    }

    #[test]
    fn subtree_key_matches_extracted_subtwig() {
        let l = labels(4);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[1]);
        t.add_child(b, l[3]);
        t.add_child(b, l[2]);
        let sub = t.subtwig(&[b, t.children(b)[0], t.children(b)[1]]);
        assert_eq!(key_of_subtree(&t, b), key_of(&sub));
    }

    #[test]
    fn try_decode_accepts_valid_and_rejects_corrupt() {
        let l = labels(3);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[1]);
        t.add_child(b, l[2]);
        let key = key_of(&t);
        let ok = key.try_decode().unwrap();
        assert_eq!(key_of(&ok), key);

        // Corrupt framing variants.
        let raw = key.as_bytes().to_vec();
        assert!(TwigKey::from_raw(raw[..raw.len() - 1].into())
            .try_decode()
            .is_none());
        let mut flipped = raw.clone();
        flipped[4] = 0x07; // clobber the root OPEN sentinel
        assert!(TwigKey::from_raw(flipped.into()).try_decode().is_none());
        let mut unbalanced = raw;
        let last = unbalanced.len() - 1;
        unbalanced[last] = 0x01; // CLOSE -> OPEN
        assert!(TwigKey::from_raw(unbalanced.into()).try_decode().is_none());
        assert!(TwigKey::from_raw(Box::from(&b""[..]))
            .try_decode()
            .is_none());
    }

    #[test]
    fn key_encoder_matches_key_of() {
        let l = labels(5);
        // A mix of shapes: deep chain, bushy root, nested multi-child with
        // identical siblings — everything that exercises the sort paths.
        let mut shapes: Vec<Twig> = Vec::new();
        shapes.push(Twig::single(l[0]));
        shapes.push(Twig::path(&[l[0], l[1], l[2], l[3]]));
        let mut bushy = Twig::single(l[0]);
        bushy.add_child(bushy.root(), l[4]);
        bushy.add_child(bushy.root(), l[1]);
        let b = bushy.add_child(bushy.root(), l[2]);
        bushy.add_child(b, l[3]);
        bushy.add_child(b, l[1]);
        bushy.add_child(b, l[1]);
        shapes.push(bushy);
        let mut enc = KeyEncoder::new();
        let mut buf = Vec::new();
        for t in &shapes {
            enc.encode_into(t, &mut buf);
            assert_eq!(
                buf.as_slice(),
                key_of(t).as_bytes(),
                "pooled encoding diverged"
            );
        }
        // Re-encoding with warm pools is still identical.
        for t in shapes.iter().rev() {
            enc.encode_into(t, &mut buf);
            assert_eq!(buf.as_slice(), key_of(t).as_bytes());
        }
        // Subtree encoding matches key_of_subtree for every node.
        for t in &shapes {
            for n in t.nodes() {
                enc.encode_subtree_into(t, n, &mut buf);
                assert_eq!(buf.as_slice(), key_of_subtree(t, n).as_bytes());
            }
        }
    }

    #[test]
    fn borrowed_byte_probes_hit_keyed_maps() {
        use std::collections::HashMap;
        let l = labels(3);
        let t = Twig::path(&[l[0], l[1], l[2]]);
        let key = key_of(&t);
        let mut map: HashMap<TwigKey, u64> = HashMap::new();
        map.insert(key.clone(), 7);
        let bytes = key.as_bytes().to_vec();
        assert_eq!(map.get(bytes.as_slice()), Some(&7));
    }

    #[test]
    fn decode_bytes_into_matches_decode_into() {
        let l = labels(4);
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[2]);
        t.add_child(b, l[1]);
        t.add_child(t.root(), l[3]);
        let key = key_of(&t);
        let mut via_key = Twig::single(l[0]);
        let mut via_bytes = Twig::single(l[0]);
        key.decode_into(&mut via_key);
        decode_bytes_into(key.as_bytes(), &mut via_bytes);
        assert_eq!(via_key, via_bytes);
    }

    #[test]
    fn key_ordering_is_total_and_stable() {
        let l = labels(3);
        let k1 = key_of(&Twig::path(&[l[0], l[1]]));
        let k2 = key_of(&Twig::path(&[l[0], l[2]]));
        assert!(k1 < k2 || k2 < k1);
    }
}
