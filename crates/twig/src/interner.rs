//! Dense interning of canonical twig encodings.
//!
//! The estimation hot path identifies sub-twigs by their canonical byte
//! encoding ([`crate::canonical`]). Hashing and cloning those byte strings on
//! every cache probe is pure overhead once a sub-twig has been seen: the
//! interner assigns each distinct encoding a dense [`TwigId`] exactly once,
//! after which every layer above (engine shards, per-query evaluation DAGs)
//! addresses the sub-twig by a `u32`. The design follows the label-interner /
//! rank-array precedent in `tl_xml::DocIndex`: content-addressed dense ids,
//! with the id-to-key direction backed by a flat vector.
//!
//! Ids are content-addressed and never recycled, so they are stable across
//! summary generations — invalidation stays a per-value concern and the id
//! space only grows with the set of *distinct* sub-twigs ever referenced.

use tl_xml::FxHashMap;

use crate::canonical::TwigKey;

/// A dense id for a canonical twig encoding, assigned by [`TwigInterner`] in
/// first-sighting order starting at 0.
pub type TwigId = u32;

/// Maps canonical twig encodings to dense [`TwigId`]s, once per encoding.
///
/// Probes by raw `&[u8]` are allocation-free (via the `Borrow<[u8]>` bridge
/// on [`TwigKey`]); the encoding bytes are cloned exactly once, when an id is
/// first assigned.
///
/// # Examples
///
/// ```
/// use tl_twig::{canonical::key_of, interner::TwigInterner, Twig};
/// use tl_xml::LabelInterner;
///
/// let mut it = LabelInterner::new();
/// let (a, b) = (it.intern("a"), it.intern("b"));
/// let key = key_of(&Twig::path(&[a, b]));
///
/// let mut interner = TwigInterner::new();
/// let (id, cloned) = interner.intern_bytes(key.as_bytes());
/// assert_eq!(cloned, key.as_bytes().len(), "first sighting clones the key");
/// assert_eq!(interner.intern_bytes(key.as_bytes()), (id, 0), "warm probe");
/// assert_eq!(interner.resolve(id), &key);
/// ```
#[derive(Debug, Default)]
pub struct TwigInterner {
    ids: FxHashMap<TwigKey, TwigId>,
    keys: Vec<TwigKey>,
}

impl TwigInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the id of an encoding without interning it. Never allocates.
    pub fn get(&self, bytes: &[u8]) -> Option<TwigId> {
        self.ids.get(bytes).copied()
    }

    /// Interns an encoding, returning its id and the number of key bytes
    /// cloned: `0` when the encoding was already present (a *warm* probe),
    /// `bytes.len()` when this call assigned a fresh id. Callers use the
    /// second component as the "zero key bytes cloned on warm probes"
    /// evidence.
    pub fn intern_bytes(&mut self, bytes: &[u8]) -> (TwigId, usize) {
        if let Some(&id) = self.ids.get(bytes) {
            return (id, 0);
        }
        let id = u32::try_from(self.keys.len()).expect("more than u32::MAX distinct twigs");
        let key = TwigKey::from_raw(bytes.into());
        self.keys.push(key.clone());
        self.ids.insert(key, id);
        (id, bytes.len())
    }

    /// Interns a [`TwigKey`], returning its dense id.
    pub fn intern(&mut self, key: &TwigKey) -> TwigId {
        self.intern_bytes(key.as_bytes()).0
    }

    /// The canonical key an id was assigned to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TwigId) -> &TwigKey {
        &self.keys[id as usize]
    }

    /// Number of distinct encodings interned (the interner occupancy).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate heap footprint: both directions of the table plus the
    /// stored encodings (kept twice — map key and resolve vector).
    pub fn heap_bytes(&self) -> usize {
        let encodings: usize = self.keys.iter().map(|k| 2 * k.as_bytes().len()).sum();
        encodings
            + self.ids.capacity() * (std::mem::size_of::<(TwigKey, TwigId)>() + 1)
            + self.keys.capacity() * std::mem::size_of::<TwigKey>()
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;
    use crate::canonical::{key_of, TwigKey};
    use crate::Twig;

    fn keys(n: usize) -> Vec<TwigKey> {
        let mut it = LabelInterner::new();
        let labels: Vec<_> = (0..=n).map(|i| it.intern(&format!("l{i}"))).collect();
        (0..n)
            .map(|i| key_of(&Twig::path(&labels[..=i + 1])))
            .collect()
    }

    #[test]
    fn ids_are_dense_and_first_sighting_ordered() {
        let ks = keys(4);
        let mut it = TwigInterner::new();
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(it.intern(k), i as TwigId);
        }
        assert_eq!(it.len(), 4);
        // Re-interning in any order returns the original ids.
        for (i, k) in ks.iter().enumerate().rev() {
            assert_eq!(it.intern(k), i as TwigId);
        }
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn warm_probes_clone_zero_bytes() {
        let ks = keys(2);
        let mut it = TwigInterner::new();
        let (id, cold) = it.intern_bytes(ks[0].as_bytes());
        assert_eq!(cold, ks[0].as_bytes().len());
        for _ in 0..10 {
            assert_eq!(it.intern_bytes(ks[0].as_bytes()), (id, 0));
        }
    }

    #[test]
    fn resolve_round_trips() {
        let ks = keys(6);
        let mut it = TwigInterner::new();
        let ids: Vec<_> = ks.iter().map(|k| it.intern(k)).collect();
        for (k, id) in ks.iter().zip(ids) {
            assert_eq!(it.resolve(id), k);
            // Canonical-form identity survives the id indirection.
            assert_eq!(key_of(&it.resolve(id).decode()), *k);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let ks = keys(1);
        let it_ro = TwigInterner::new();
        assert_eq!(it_ro.get(ks[0].as_bytes()), None);
        let mut it = TwigInterner::new();
        let id = it.intern(&ks[0]);
        assert_eq!(it.get(ks[0].as_bytes()), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn heap_bytes_grows_with_occupancy() {
        let ks = keys(8);
        let mut it = TwigInterner::new();
        let empty = it.heap_bytes();
        for k in &ks {
            it.intern(k);
        }
        assert!(it.heap_bytes() > empty);
    }
}
