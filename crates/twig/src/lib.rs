//! # tl-twig — twig queries: model, canonical forms, exact match counting
//!
//! A *twig query* (paper §2.1) is a node-labeled rooted tree; a *match* in a
//! data tree is a 1-1 node mapping that preserves labels and parent-child
//! edges (Definition 1). The *selectivity* `s(Q)` of a twig is its number of
//! matches. This crate provides:
//!
//! * [`Twig`] — a small arena representation of a twig query, with the
//!   structural operations the decomposition estimators need (leaf removal,
//!   subtree extraction, pre-order covering);
//! * [`canonical`] — a canonical byte encoding of unordered labeled trees,
//!   so that isomorphic twigs (equal up to sibling order) collapse to one
//!   summary key;
//! * [`parse_twig`] — a tiny XPath-like surface syntax (`a[b][c/d]`);
//! * [`count_matches`] — the exact selectivity of a twig in a document,
//!   including correct injective counting when sibling sub-patterns share a
//!   label (the general case behind the paper's "all children distinct"
//!   simplification).

pub mod canonical;
pub mod interner;
pub mod matcher;
pub mod ops;
pub mod parser;
pub mod reference;
pub mod twig;

pub use canonical::TwigKey;
pub use interner::{TwigId, TwigInterner};
pub use matcher::{count_matches, MatchCounter, MatchError, MAX_SIBLING_GROUP};
pub use parser::{parse_twig, parse_twig_in, parse_twig_valued, TwigParseError};
pub use reference::ReferenceMatchCounter;
pub use twig::{Twig, TwigNodeId};
