//! Exact twig selectivity: counting Definition 1 matches.
//!
//! A match of twig `Q` in document `T` is a 1-1 mapping `f: V_Q -> V_T`
//! preserving labels and parent-child edges. The count is computed bottom-up:
//! for each query node `q` and each document node `v` with the same label,
//! `m(q, v)` is the number of matches of the subtree of `Q` rooted at `q`
//! whose root maps to `v`. For the children of `q`:
//!
//! * query children with **pairwise-distinct labels** can never collide on a
//!   document child, so their contributions multiply
//!   (`Π_i Σ_u m(c_i, u)`) — this is the paper's "all children distinct"
//!   simplification, here a provably-exact fast path;
//! * query children **sharing a label** must be assigned to *distinct*
//!   document children (injectivity). We count those assignments exactly
//!   with a subset dynamic program over the group — the permanent of the
//!   group's `m(c_i, u_j)` matrix — in `O(|u| · 2^g · g)` for group size
//!   `g`.
//!
//! Two sibling subtrees mapped to distinct document children occupy disjoint
//! document subtrees, so per-level injectivity implies global injectivity;
//! the group-wise product is exact for all twigs, not an approximation.
//!
//! Counts use saturating `u64` arithmetic: a query whose true count exceeds
//! `u64::MAX` (possible only on adversarial inputs) reports `u64::MAX`
//! rather than wrapping.

use tl_xml::{Document, FxHashMap, LabelId, NodeId};

use crate::twig::{Twig, TwigNodeId};

/// Maximum number of same-label sibling query nodes the injective counter
/// accepts (the subset DP is `2^g`).
pub const MAX_SIBLING_GROUP: usize = 20;

/// Reusable exact match counter over one document.
///
/// Construction builds the label→nodes index once (`O(|T|)`); each
/// [`count`](MatchCounter::count) then touches only document nodes whose
/// label occurs in the query.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_twig::{parse_twig_in, MatchCounter};
///
/// // Figure 1: two <laptop> elements, each with <brand> and <price>.
/// let doc = parse_document(
///     b"<computer><laptops>\
///         <laptop><brand/><price/></laptop>\
///         <laptop><brand/><price/></laptop>\
///       </laptops><desktops/></computer>",
///     ParseOptions::default(),
/// ).unwrap();
/// let counter = MatchCounter::new(&doc);
/// let q = parse_twig_in("//laptop[brand][price]", doc.labels()).unwrap();
/// assert_eq!(counter.count(&q), 2);
/// ```
pub struct MatchCounter<'d> {
    doc: &'d Document,
    by_label: Vec<Vec<NodeId>>,
}

impl<'d> MatchCounter<'d> {
    /// Builds the counter (indexes the document by label).
    pub fn new(doc: &'d Document) -> Self {
        Self {
            doc,
            by_label: doc.nodes_by_label(),
        }
    }

    /// The document this counter indexes.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Number of document nodes labeled `label`.
    pub fn label_count(&self, label: LabelId) -> u64 {
        self.by_label
            .get(label.index())
            .map_or(0, |v| v.len() as u64)
    }

    /// Per-root match counts: each `(v, m)` pair is a document node `v`
    /// that can host the twig's root, with `m ≥ 1` matches rooted there.
    /// The sum of all `m` equals [`count`](MatchCounter::count). This is
    /// the executor-facing API: an approximate-answering layer can return
    /// the actual anchor nodes, not just the aggregate.
    pub fn count_by_root(&self, twig: &Twig) -> Vec<(NodeId, u64)> {
        let mut out = Vec::new();
        self.count_inner(twig, Some(&mut out));
        out
    }

    /// Exact selectivity of `twig` in the document.
    pub fn count(&self, twig: &Twig) -> u64 {
        self.count_inner(twig, None)
    }

    fn count_inner(&self, twig: &Twig, mut roots: Option<&mut Vec<(NodeId, u64)>>) -> u64 {
        // Any label absent from the document zeroes the count immediately.
        for n in twig.nodes() {
            if self.label_count(twig.label(n)) == 0 {
                return 0;
            }
        }
        if twig.len() == 1 {
            if let Some(roots) = roots.as_deref_mut() {
                roots.extend(
                    self.by_label[twig.label(twig.root()).index()]
                        .iter()
                        .map(|&v| (v, 1)),
                );
            }
            return self.label_count(twig.label(twig.root()));
        }

        // Children of each query node, grouped by label; groups with one
        // member take the product fast path.
        let groups = child_groups(twig);

        // m(q, v) for already-processed query nodes, sparse per query node.
        let mut maps: Vec<FxHashMap<u32, u64>> = vec![FxHashMap::default(); twig.len()];

        // Process query nodes children-first (reverse pre-order works:
        // pre-order emits parents before children).
        let order = twig.pre_order();
        let mut child_buf: Vec<NodeId> = Vec::new();
        for &q in order.iter().rev() {
            if twig.children(q).is_empty() {
                continue; // Leaves are implicit: m(leaf, v) = 1 on label match.
            }
            let candidates = &self.by_label[twig.label(q).index()];
            let mut map = FxHashMap::default();
            'cand: for &v in candidates {
                child_buf.clear();
                child_buf.extend(self.doc.children(v));
                let mut total: u64 = 1;
                for group in &groups[q as usize] {
                    let f = self.group_count(twig, &maps, group, &child_buf);
                    if f == 0 {
                        continue 'cand;
                    }
                    total = total.saturating_mul(f);
                }
                map.insert(v.0, total);
            }
            maps[q as usize] = map;
        }

        let root = twig.root();
        if twig.children(root).is_empty() {
            unreachable!("single-node twigs returned early");
        }
        if let Some(roots) = roots {
            roots.extend(maps[root as usize].iter().map(|(&v, &m)| (NodeId(v), m)));
            roots.sort_unstable_by_key(|&(v, _)| v.0);
        }
        maps[root as usize]
            .values()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Number of matches of `q`'s subtree with root mapped to `u`.
    #[inline]
    fn node_count(
        &self,
        twig: &Twig,
        maps: &[FxHashMap<u32, u64>],
        q: TwigNodeId,
        u: NodeId,
    ) -> u64 {
        if self.doc.label(u) != twig.label(q) {
            return 0;
        }
        if twig.children(q).is_empty() {
            1
        } else {
            maps[q as usize].get(&u.0).copied().unwrap_or(0)
        }
    }

    /// Counts assignments for one same-label child group under document
    /// children `doc_children`.
    fn group_count(
        &self,
        twig: &Twig,
        maps: &[FxHashMap<u32, u64>],
        group: &ChildGroup,
        doc_children: &[NodeId],
    ) -> u64 {
        let label = group.label;
        if group.members.len() == 1 {
            let q = group.members[0];
            let mut sum: u64 = 0;
            for &u in doc_children {
                if self.doc.label(u) == label {
                    sum = sum.saturating_add(self.node_count(twig, maps, q, u));
                }
            }
            return sum;
        }
        let g = group.members.len();
        assert!(
            g <= MAX_SIBLING_GROUP,
            "more than {MAX_SIBLING_GROUP} same-label sibling query nodes"
        );
        // Subset DP: f[mask] = #injective assignments of the query children
        // in `mask` to the document children examined so far.
        let full = (1usize << g) - 1;
        let mut f = vec![0u64; full + 1];
        f[0] = 1;
        let mut weights = vec![0u64; g];
        for &u in doc_children {
            if self.doc.label(u) != label {
                continue;
            }
            let mut any = false;
            for (i, &q) in group.members.iter().enumerate() {
                weights[i] = self.node_count(twig, maps, q, u);
                any |= weights[i] != 0;
            }
            if !any {
                continue;
            }
            // Descending mask order: f[mask ^ bit] is still the previous
            // column's value when we read it.
            for mask in (1..=full).rev() {
                let mut add: u64 = 0;
                let mut bits = mask;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if weights[i] != 0 {
                        add = add.saturating_add(f[mask ^ (1 << i)].saturating_mul(weights[i]));
                    }
                }
                f[mask] = f[mask].saturating_add(add);
            }
        }
        f[full]
    }
}

/// A maximal set of children of one query node sharing a label.
struct ChildGroup {
    label: LabelId,
    members: Vec<TwigNodeId>,
}

/// Groups each query node's children by label.
fn child_groups(twig: &Twig) -> Vec<Vec<ChildGroup>> {
    let mut all = Vec::with_capacity(twig.len());
    for q in twig.nodes() {
        let mut groups: Vec<ChildGroup> = Vec::new();
        for &c in twig.children(q) {
            let label = twig.label(c);
            match groups.iter_mut().find(|g| g.label == label) {
                Some(g) => g.members.push(c),
                None => groups.push(ChildGroup {
                    label,
                    members: vec![c],
                }),
            }
        }
        all.push(groups);
    }
    all
}

/// Convenience one-shot form of [`MatchCounter::count`].
pub fn count_matches(doc: &Document, twig: &Twig) -> u64 {
    MatchCounter::new(doc).count(twig)
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::parser::parse_twig;

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn count(d: &Document, q: &str) -> u64 {
        let mut labels = d.labels().clone();
        let twig = parse_twig(q, &mut labels).unwrap();
        // Unknown labels mean zero matches; count() handles them because
        // by_label simply has no entry.
        let counter = MatchCounter::new(d);
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= d.labels().len())
        {
            return 0;
        }
        counter.count(&twig)
    }

    #[test]
    fn figure1_example() {
        let d = doc("<computer><laptops>\
               <laptop><brand/><price/></laptop>\
               <laptop><brand/><price/></laptop>\
             </laptops><desktops/></computer>");
        assert_eq!(count(&d, "laptop[brand][price]"), 2);
        assert_eq!(count(&d, "laptop"), 2);
        assert_eq!(count(&d, "laptops/laptop/brand"), 2);
        assert_eq!(count(&d, "computer[laptops][desktops]"), 1);
    }

    #[test]
    fn single_label_counts_nodes() {
        let d = doc("<a><b/><b/><b/></a>");
        assert_eq!(count(&d, "b"), 3);
        assert_eq!(count(&d, "a"), 1);
    }

    #[test]
    fn missing_label_is_zero() {
        let d = doc("<a><b/></a>");
        assert_eq!(count(&d, "a/z"), 0);
        assert_eq!(count(&d, "z"), 0);
    }

    #[test]
    fn structure_mismatch_is_zero() {
        let d = doc("<a><b/><c/></a>");
        assert_eq!(count(&d, "b/c"), 0);
        assert_eq!(count(&d, "c[b]"), 0);
    }

    #[test]
    fn path_counts_multiply_over_occurrences() {
        // Two a-nodes each with one b child; each b has 2 c children.
        let d = doc("<r><a><b><c/><c/></b></a><a><b><c/><c/></b></a></r>");
        assert_eq!(count(&d, "a/b"), 2);
        assert_eq!(count(&d, "a/b/c"), 4);
        assert_eq!(count(&d, "b/c"), 4);
    }

    #[test]
    fn branching_combines_independently() {
        // One a with 2 b's and 3 c's: a[b][c] has 2*3 = 6 matches.
        let d = doc("<a><b/><b/><c/><c/><c/></a>");
        assert_eq!(count(&d, "a[b][c]"), 6);
    }

    #[test]
    fn duplicate_sibling_labels_are_injective() {
        // a has 3 b children; a[b][b] must count ordered pairs of
        // *distinct* b's: 3 * 2 = 6 (not 9).
        let d = doc("<a><b/><b/><b/></a>");
        let mut labels = d.labels().clone();
        let mut q = crate::twig::Twig::single(labels.intern("a"));
        let b = labels.intern("b");
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        assert_eq!(count_matches(&d, &q), 6);
    }

    #[test]
    fn duplicate_sibling_subtrees_with_different_shapes() {
        // a: b(with c), b(empty). Query a[b[c]][b]: the b[c] leg matches
        // only the first b; the bare b leg matches either b, but must be
        // distinct => pairs: (b1->bc, b2->either other) = 1 * 1 = 1.
        let d = doc("<a><b><c/></b><b/></a>");
        let labels = d.labels().clone();
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let c = labels.get("c").unwrap();
        let mut q = crate::twig::Twig::single(a);
        let b1 = q.add_child(q.root(), b);
        q.add_child(b1, c);
        q.add_child(q.root(), b);
        assert_eq!(count_matches(&d, &q), 1);
    }

    #[test]
    fn injective_count_matches_brute_force_small() {
        // Document: a with b-children having varying numbers of c's.
        let d = doc("<a><b><c/></b><b><c/><c/></b><b/></a>");
        // Query: a[b[c]][b[c]] — ordered pairs of distinct b's each
        // matched with one of their c's: legs (b1,b2): 1*2 + (b2,b1): 2*1
        // = 4 (b3 has no c).
        let labels = d.labels().clone();
        let (a, b, c) = (
            labels.get("a").unwrap(),
            labels.get("b").unwrap(),
            labels.get("c").unwrap(),
        );
        let mut q = crate::twig::Twig::single(a);
        let x = q.add_child(q.root(), b);
        q.add_child(x, c);
        let y = q.add_child(q.root(), b);
        q.add_child(y, c);
        assert_eq!(count_matches(&d, &q), 4);
    }

    #[test]
    fn root_of_twig_matches_anywhere() {
        let d = doc("<r><x><a><b/></a></x><a><b/></a></r>");
        assert_eq!(count(&d, "a/b"), 2);
    }

    #[test]
    fn recursive_labels() {
        // Nested <s> elements: s/s pairs.
        let d = doc("<s><s><s/></s><s/></s>");
        // Parent-child s/s edges: (1,2),(2,3),(1,4) -> 3 matches.
        assert_eq!(count(&d, "s/s"), 3);
        // s/s/s chains: (1,2,3) -> 1.
        assert_eq!(count(&d, "s/s/s"), 1);
        // s[s][s]: nodes with >=2 distinct s children: node1 has children
        // {2,4}: ordered pairs = 2. Node 2 has one child. Total 2.
        let labels = d.labels().clone();
        let s = labels.get("s").unwrap();
        let mut q = crate::twig::Twig::single(s);
        q.add_child(q.root(), s);
        q.add_child(q.root(), s);
        assert_eq!(count_matches(&d, &q), 2);
    }

    #[test]
    fn count_by_root_sums_to_count_and_anchors_correctly() {
        let d = doc("<r><a><b/><b/></a><a><b/></a><x><a/></x></r>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b", &mut labels).unwrap();
        let by_root = counter.count_by_root(&q);
        let total: u64 = by_root.iter().map(|&(_, m)| m).sum();
        assert_eq!(total, counter.count(&q));
        assert_eq!(by_root.len(), 2, "two `a` nodes have b children");
        for (v, m) in by_root {
            assert_eq!(d.label_name(d.label(v)), "a");
            assert!(m >= 1);
        }
        // Single-node twig anchors at every labeled node.
        let q1 = parse_twig("a", &mut labels).unwrap();
        assert_eq!(counter.count_by_root(&q1).len(), 3);
    }

    #[test]
    fn count_by_root_empty_for_zero_queries() {
        let d = doc("<r><a/></r>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b", &mut labels).unwrap();
        assert!(counter.count_by_root(&q).is_empty());
    }

    #[test]
    fn counter_reuse_across_queries() {
        let d = doc("<a><b><c/></b><b><c/></b></a>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q1 = parse_twig("a/b", &mut labels).unwrap();
        let q2 = parse_twig("b/c", &mut labels).unwrap();
        assert_eq!(counter.count(&q1), 2);
        assert_eq!(counter.count(&q2), 2);
        assert_eq!(counter.count(&q1), 2, "counter is stateless across queries");
    }

    #[test]
    fn deep_query_on_deep_document() {
        let mut s = String::new();
        for _ in 0..50 {
            s.push_str("<d>");
        }
        for _ in 0..50 {
            s.push_str("</d>");
        }
        let d = doc(&s);
        let labels = d.labels().clone();
        let dl = labels.get("d").unwrap();
        let q = crate::twig::Twig::path(&[dl; 10]);
        // Chains of 10 consecutive d's in a 50-chain: 41.
        assert_eq!(count_matches(&d, &q), 41);
    }

    #[test]
    fn wide_fanout_counts() {
        let mut s = String::from("<a>");
        for _ in 0..1000 {
            s.push_str("<b/>");
        }
        s.push_str("</a>");
        let d = doc(&s);
        assert_eq!(count(&d, "a/b"), 1000);
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = crate::twig::Twig::single(a);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        // Ordered triples of distinct b's: 1000*999*998.
        assert_eq!(count_matches(&d, &q), 1000 * 999 * 998);
    }

    #[test]
    fn isomorphic_queries_have_equal_counts() {
        let d = doc("<a><b/><c><x/></c><c/></a>");
        let mut labels = d.labels().clone();
        let q1 = parse_twig("a[b][c[x]]", &mut labels).unwrap();
        let q2 = parse_twig("a[c[x]][b]", &mut labels).unwrap();
        assert_eq!(count_matches(&d, &q1), count_matches(&d, &q2));
    }
}
