//! Exact twig selectivity: counting Definition 1 matches.
//!
//! A match of twig `Q` in document `T` is a 1-1 mapping `f: V_Q -> V_T`
//! preserving labels and parent-child edges. The count is computed bottom-up:
//! for each query node `q` and each document node `v` with the same label,
//! `m(q, v)` is the number of matches of the subtree of `Q` rooted at `q`
//! whose root maps to `v`. For the children of `q`:
//!
//! * query children with **pairwise-distinct labels** can never collide on a
//!   document child, so their contributions multiply
//!   (`Π_i Σ_u m(c_i, u)`) — this is the paper's "all children distinct"
//!   simplification, here a provably-exact fast path;
//! * query children **sharing a label** must be assigned to *distinct*
//!   document children (injectivity). We count those assignments exactly
//!   with a subset dynamic program over the group — the permanent of the
//!   group's `m(c_i, u_j)` matrix — in `O(|u| · 2^g · g)` for group size
//!   `g`.
//!
//! Two sibling subtrees mapped to distinct document children occupy disjoint
//! document subtrees, so per-level injectivity implies global injectivity;
//! the group-wise product is exact for all twigs, not an approximation.
//!
//! # Memory layout
//!
//! The kernel runs on a shared [`DocIndex`] (see `tl_xml::index`): the
//! `m(q, ·)` table of each query node is a **dense `Vec<u64>`** indexed by
//! within-label rank (not a hash map keyed by node id), candidate document
//! nodes are the index's contiguous label group, and the document children
//! of a candidate that carry one query-child label are a contiguous CSR
//! slice — no sibling-link walking, no per-child label filtering, no hash
//! probes anywhere in the inner loops. The pre-CSR hash-map kernel survives
//! as [`reference::ReferenceMatchCounter`](crate::reference) for
//! benchmarking and differential testing.
//!
//! Counts use saturating `u64` arithmetic: a query whose true count exceeds
//! `u64::MAX` (possible only on adversarial inputs) reports `u64::MAX`
//! rather than wrapping. Similarly, a query with more than
//! [`MAX_SIBLING_GROUP`] same-label sibling nodes (the subset DP is `2^g`)
//! makes [`MatchCounter::try_count`] return
//! [`MatchError::GroupTooLarge`]; the infallible [`MatchCounter::count`]
//! reports such queries as the saturated `u64::MAX` instead of panicking,
//! so adversarial queries can never abort a mining run from library code.

use std::fmt;

use tl_xml::{DocIndex, Document, LabelId, NodeId};

use crate::twig::{Twig, TwigNodeId};

/// Maximum number of same-label sibling query nodes the injective counter
/// accepts (the subset DP is `2^g`).
pub const MAX_SIBLING_GROUP: usize = 20;

/// Why the exact kernel refused a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchError {
    /// The query has a same-label sibling group larger than
    /// [`MAX_SIBLING_GROUP`]; the injective subset DP would need `2^size`
    /// states.
    GroupTooLarge {
        /// Observed group size.
        size: usize,
        /// The supported maximum ([`MAX_SIBLING_GROUP`]).
        max: usize,
    },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MatchError::GroupTooLarge { size, max } => write!(
                f,
                "query has {size} same-label sibling nodes; exact counting supports at most {max}"
            ),
        }
    }
}

impl std::error::Error for MatchError {}

impl From<MatchError> for tl_fault::Fault {
    fn from(err: MatchError) -> Self {
        tl_fault::Fault::new(tl_fault::FaultKind::GroupTooLarge, err.to_string())
    }
}

/// Owned-or-borrowed document index. The owned arm is boxed so counters
/// borrowing a shared index don't carry the full `DocIndex` inline.
enum IndexStore<'d> {
    Owned(Box<DocIndex>),
    Shared(&'d DocIndex),
}

/// Reusable exact match counter over one document.
///
/// [`new`](MatchCounter::new) builds a private [`DocIndex`] (`O(|T|)`);
/// [`with_index`](MatchCounter::with_index) borrows a shared one so a
/// document indexed once can serve mining, ground truth, and workload
/// labeling without re-indexing. Each [`count`](MatchCounter::count) then
/// touches only document nodes whose label occurs in the query.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_twig::{parse_twig_in, MatchCounter};
///
/// // Figure 1: two <laptop> elements, each with <brand> and <price>.
/// let doc = parse_document(
///     b"<computer><laptops>\
///         <laptop><brand/><price/></laptop>\
///         <laptop><brand/><price/></laptop>\
///       </laptops><desktops/></computer>",
///     ParseOptions::default(),
/// ).unwrap();
/// let counter = MatchCounter::new(&doc);
/// let q = parse_twig_in("//laptop[brand][price]", doc.labels()).unwrap();
/// assert_eq!(counter.count(&q), 2);
/// ```
pub struct MatchCounter<'d> {
    doc: &'d Document,
    index: IndexStore<'d>,
    rec: &'d dyn tl_obs::Recorder,
}

/// Reusable DP buffers, allocated once per `count` call.
struct Scratch {
    /// Subset-DP table (`2^g` entries for the active group).
    dp: Vec<u64>,
    /// Per-member weights for the document child under consideration.
    weights: Vec<u64>,
}

impl<'d> MatchCounter<'d> {
    /// Builds the counter, indexing the document (`O(|T|)`).
    pub fn new(doc: &'d Document) -> Self {
        Self {
            doc,
            index: IndexStore::Owned(Box::new(DocIndex::new(doc))),
            rec: &tl_obs::NOOP,
        }
    }

    /// Builds the counter over a pre-built shared index of `doc`.
    ///
    /// The index must have been built from this exact document; the counter
    /// trusts its node and label numbering.
    pub fn with_index(doc: &'d Document, index: &'d DocIndex) -> Self {
        debug_assert_eq!(index.len(), doc.len(), "index built from another document");
        Self {
            doc,
            index: IndexStore::Shared(index),
            rec: &tl_obs::NOOP,
        }
    }

    /// Reports kernel activity to `rec`: one `twig.match.calls` count per
    /// query and the total m-table entries allocated for it
    /// (`twig.match.m_entries` histogram). Returns `self` for chaining
    /// after [`new`](MatchCounter::new) / [`with_index`](MatchCounter::with_index).
    pub fn observed(mut self, rec: &'d dyn tl_obs::Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// The document this counter indexes.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// The document index the kernel runs on.
    #[inline]
    pub fn index(&self) -> &DocIndex {
        match &self.index {
            IndexStore::Owned(idx) => idx,
            IndexStore::Shared(idx) => idx,
        }
    }

    /// Number of document nodes labeled `label`.
    #[inline]
    pub fn label_count(&self, label: LabelId) -> u64 {
        self.index().label_count(label)
    }

    /// Per-root match counts: each `(v, m)` pair is a document node `v`
    /// that can host the twig's root, with `m ≥ 1` matches rooted there.
    /// The sum of all `m` equals [`count`](MatchCounter::count). This is
    /// the executor-facing API: an approximate-answering layer can return
    /// the actual anchor nodes, not just the aggregate.
    ///
    /// # Panics
    ///
    /// Panics on queries [`try_count`](MatchCounter::try_count) rejects;
    /// use [`try_count_by_root`](MatchCounter::try_count_by_root) to handle
    /// adversarial queries gracefully.
    pub fn count_by_root(&self, twig: &Twig) -> Vec<(NodeId, u64)> {
        self.try_count_by_root(twig)
            .expect("query exceeds exact-kernel limits")
    }

    /// Fallible form of [`count_by_root`](MatchCounter::count_by_root).
    pub fn try_count_by_root(&self, twig: &Twig) -> Result<Vec<(NodeId, u64)>, MatchError> {
        let mut out = Vec::new();
        self.count_inner(twig, Some(&mut out))?;
        Ok(out)
    }

    /// Exact selectivity of `twig` in the document.
    ///
    /// Queries the kernel cannot afford (a same-label sibling group larger
    /// than [`MAX_SIBLING_GROUP`]) report the saturated `u64::MAX`, in line
    /// with the saturating arithmetic used for overflowing counts; callers
    /// that need to distinguish them use [`try_count`](MatchCounter::try_count).
    pub fn count(&self, twig: &Twig) -> u64 {
        self.count_inner(twig, None).unwrap_or(u64::MAX)
    }

    /// Exact selectivity of `twig`, or an error for queries outside the
    /// kernel's limits.
    pub fn try_count(&self, twig: &Twig) -> Result<u64, MatchError> {
        self.count_inner(twig, None)
    }

    fn count_inner(
        &self,
        twig: &Twig,
        mut roots: Option<&mut Vec<(NodeId, u64)>>,
    ) -> Result<u64, MatchError> {
        let index = self.index();
        if self.rec.enabled() {
            self.rec.add(tl_obs::names::TWIG_MATCH_CALLS, 1);
        }
        // Any label absent from the document zeroes the count immediately.
        for n in twig.nodes() {
            if index.label_count(twig.label(n)) == 0 {
                return Ok(0);
            }
        }
        if twig.len() == 1 {
            let group = index.nodes_with_label(twig.label(twig.root()));
            if let Some(roots) = roots.as_deref_mut() {
                roots.extend(group.iter().map(|&v| (v, 1)));
            }
            return Ok(group.len() as u64);
        }

        // Children of each query node, grouped by label; groups with one
        // member take the product fast path.
        let groups = child_groups(twig);
        for per_node in &groups {
            for group in per_node {
                let g = group.members.len();
                if g > MAX_SIBLING_GROUP {
                    return Err(MatchError::GroupTooLarge {
                        size: g,
                        max: MAX_SIBLING_GROUP,
                    });
                }
            }
        }

        // m(q, ·) for already-processed query nodes: dense vectors indexed
        // by within-label rank (leaves stay empty — m(leaf, v) = 1 on label
        // match, which the CSR slices guarantee).
        let mut m: Vec<Vec<u64>> = vec![Vec::new(); twig.len()];
        let mut scratch = Scratch {
            dp: Vec::new(),
            weights: Vec::new(),
        };

        // Process query nodes children-first (reverse pre-order works:
        // pre-order emits parents before children).
        let mut m_entries: u64 = 0;
        let order = twig.pre_order();
        for &q in order.iter().rev() {
            if twig.children(q).is_empty() {
                continue;
            }
            let candidates = index.nodes_with_label(twig.label(q));
            let mut m_q = vec![0u64; candidates.len()];
            m_entries += m_q.len() as u64;
            'cand: for (slot, &v) in candidates.iter().enumerate() {
                let mut total: u64 = 1;
                for group in &groups[q as usize] {
                    let f = self.group_count(twig, &m, group, v, &mut scratch);
                    if f == 0 {
                        continue 'cand;
                    }
                    total = total.saturating_mul(f);
                }
                m_q[slot] = total;
            }
            m[q as usize] = m_q;
        }

        if self.rec.enabled() {
            self.rec
                .observe(tl_obs::names::TWIG_MATCH_M_ENTRIES, m_entries);
        }
        let root = twig.root();
        let m_root = &m[root as usize];
        if let Some(roots) = roots {
            // Label groups are in document order, so the output is already
            // sorted by node id.
            let candidates = index.nodes_with_label(twig.label(root));
            roots.extend(
                candidates
                    .iter()
                    .zip(m_root)
                    .filter(|&(_, &count)| count > 0)
                    .map(|(&v, &count)| (v, count)),
            );
        }
        Ok(sum_saturating(m_root))
    }

    /// Counts assignments for one same-label child group under the document
    /// children of `v` carrying the group's label (a contiguous CSR slice).
    ///
    /// Group sizes above [`MAX_SIBLING_GROUP`] are rejected up front in
    /// `count_inner`, so this sees only affordable groups.
    fn group_count(
        &self,
        twig: &Twig,
        m: &[Vec<u64>],
        group: &ChildGroup,
        v: NodeId,
        scratch: &mut Scratch,
    ) -> u64 {
        let index = self.index();
        // The kernel only consumes per-label table positions, so it walks
        // the index's precomputed rank slice — one contiguous `u32` stream,
        // no per-child `node -> rank` indirection.
        let doc_ranks = index.child_ranks_with_label(v, group.label);
        if group.members.len() == 1 {
            let q = group.members[0];
            if twig.children(q).is_empty() {
                return doc_ranks.len() as u64;
            }
            return sum_gather_saturating(&m[q as usize], doc_ranks);
        }
        let g = group.members.len();
        if doc_ranks.len() < g {
            return 0; // Injectivity needs g distinct document children.
        }
        // Subset DP: f[mask] = #injective assignments of the query children
        // in `mask` to the document children examined so far.
        let full = (1usize << g) - 1;
        scratch.dp.clear();
        scratch.dp.resize(full + 1, 0);
        scratch.dp[0] = 1;
        scratch.weights.clear();
        scratch.weights.resize(g, 0);
        let f = &mut scratch.dp;
        let weights = &mut scratch.weights;
        for &rank in doc_ranks {
            let rank = rank as usize;
            let mut any = false;
            for (i, &q) in group.members.iter().enumerate() {
                weights[i] = if twig.children(q).is_empty() {
                    1
                } else {
                    m[q as usize][rank]
                };
                any |= weights[i] != 0;
            }
            if !any {
                continue;
            }
            // Descending mask order: f[mask ^ bit] is still the previous
            // column's value when we read it.
            for mask in (1..=full).rev() {
                let mut add: u64 = 0;
                let mut bits = mask;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if weights[i] != 0 {
                        add = add.saturating_add(f[mask ^ (1 << i)].saturating_mul(weights[i]));
                    }
                }
                f[mask] = f[mask].saturating_add(add);
            }
        }
        f[full]
    }
}

/// Saturating sum of a dense m-vector, four independent accumulator lanes
/// over `chunks_exact` so the loop body carries no cross-iteration
/// dependency and autovectorizes.
///
/// Any association of saturating `u64` adds over non-negative terms equals
/// `min(true sum, u64::MAX)` — saturation is absorbing and the true sum only
/// grows — so lane splitting is bit-exact against the sequential fold.
#[inline]
fn sum_saturating(values: &[u64]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = values.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = lanes[0].saturating_add(c[0]);
        lanes[1] = lanes[1].saturating_add(c[1]);
        lanes[2] = lanes[2].saturating_add(c[2]);
        lanes[3] = lanes[3].saturating_add(c[3]);
    }
    let mut total = lanes[0]
        .saturating_add(lanes[1])
        .saturating_add(lanes[2].saturating_add(lanes[3]));
    for &v in chunks.remainder() {
        total = total.saturating_add(v);
    }
    total
}

/// Saturating sum of `m_q[rank]` over a contiguous rank slice (the
/// single-member child-group fast path): the gather indexes are a plain
/// `u32` stream, the adds run in four independent lanes, and the loop body
/// has no data-dependent branch. Bit-exact per the same association
/// argument as [`sum_saturating`].
#[inline]
fn sum_gather_saturating(m_q: &[u64], ranks: &[u32]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = ranks.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = lanes[0].saturating_add(m_q[c[0] as usize]);
        lanes[1] = lanes[1].saturating_add(m_q[c[1] as usize]);
        lanes[2] = lanes[2].saturating_add(m_q[c[2] as usize]);
        lanes[3] = lanes[3].saturating_add(m_q[c[3] as usize]);
    }
    let mut total = lanes[0]
        .saturating_add(lanes[1])
        .saturating_add(lanes[2].saturating_add(lanes[3]));
    for &r in chunks.remainder() {
        total = total.saturating_add(m_q[r as usize]);
    }
    total
}

/// A maximal set of children of one query node sharing a label.
struct ChildGroup {
    label: LabelId,
    members: Vec<TwigNodeId>,
}

/// Groups each query node's children by label.
fn child_groups(twig: &Twig) -> Vec<Vec<ChildGroup>> {
    let mut all = Vec::with_capacity(twig.len());
    for q in twig.nodes() {
        let mut groups: Vec<ChildGroup> = Vec::new();
        for &c in twig.children(q) {
            let label = twig.label(c);
            match groups.iter_mut().find(|g| g.label == label) {
                Some(g) => g.members.push(c),
                None => groups.push(ChildGroup {
                    label,
                    members: vec![c],
                }),
            }
        }
        all.push(groups);
    }
    all
}

/// Convenience one-shot form of [`MatchCounter::count`].
pub fn count_matches(doc: &Document, twig: &Twig) -> u64 {
    MatchCounter::new(doc).count(twig)
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::parser::parse_twig;

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn count(d: &Document, q: &str) -> u64 {
        let mut labels = d.labels().clone();
        let twig = parse_twig(q, &mut labels).unwrap();
        // Unknown labels mean zero matches; count() handles them because
        // the index simply has no entry.
        let counter = MatchCounter::new(d);
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= d.labels().len())
        {
            return 0;
        }
        counter.count(&twig)
    }

    #[test]
    fn figure1_example() {
        let d = doc("<computer><laptops>\
               <laptop><brand/><price/></laptop>\
               <laptop><brand/><price/></laptop>\
             </laptops><desktops/></computer>");
        assert_eq!(count(&d, "laptop[brand][price]"), 2);
        assert_eq!(count(&d, "laptop"), 2);
        assert_eq!(count(&d, "laptops/laptop/brand"), 2);
        assert_eq!(count(&d, "computer[laptops][desktops]"), 1);
    }

    #[test]
    fn single_label_counts_nodes() {
        let d = doc("<a><b/><b/><b/></a>");
        assert_eq!(count(&d, "b"), 3);
        assert_eq!(count(&d, "a"), 1);
    }

    #[test]
    fn missing_label_is_zero() {
        let d = doc("<a><b/></a>");
        assert_eq!(count(&d, "a/z"), 0);
        assert_eq!(count(&d, "z"), 0);
    }

    #[test]
    fn structure_mismatch_is_zero() {
        let d = doc("<a><b/><c/></a>");
        assert_eq!(count(&d, "b/c"), 0);
        assert_eq!(count(&d, "c[b]"), 0);
    }

    #[test]
    fn path_counts_multiply_over_occurrences() {
        // Two a-nodes each with one b child; each b has 2 c children.
        let d = doc("<r><a><b><c/><c/></b></a><a><b><c/><c/></b></a></r>");
        assert_eq!(count(&d, "a/b"), 2);
        assert_eq!(count(&d, "a/b/c"), 4);
        assert_eq!(count(&d, "b/c"), 4);
    }

    #[test]
    fn branching_combines_independently() {
        // One a with 2 b's and 3 c's: a[b][c] has 2*3 = 6 matches.
        let d = doc("<a><b/><b/><c/><c/><c/></a>");
        assert_eq!(count(&d, "a[b][c]"), 6);
    }

    #[test]
    fn duplicate_sibling_labels_are_injective() {
        // a has 3 b children; a[b][b] must count ordered pairs of
        // *distinct* b's: 3 * 2 = 6 (not 9).
        let d = doc("<a><b/><b/><b/></a>");
        let mut labels = d.labels().clone();
        let mut q = crate::twig::Twig::single(labels.intern("a"));
        let b = labels.intern("b");
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        assert_eq!(count_matches(&d, &q), 6);
    }

    #[test]
    fn duplicate_sibling_subtrees_with_different_shapes() {
        // a: b(with c), b(empty). Query a[b[c]][b]: the b[c] leg matches
        // only the first b; the bare b leg matches either b, but must be
        // distinct => pairs: (b1->bc, b2->either other) = 1 * 1 = 1.
        let d = doc("<a><b><c/></b><b/></a>");
        let labels = d.labels().clone();
        let a = labels.get("a").unwrap();
        let b = labels.get("b").unwrap();
        let c = labels.get("c").unwrap();
        let mut q = crate::twig::Twig::single(a);
        let b1 = q.add_child(q.root(), b);
        q.add_child(b1, c);
        q.add_child(q.root(), b);
        assert_eq!(count_matches(&d, &q), 1);
    }

    #[test]
    fn injective_count_matches_brute_force_small() {
        // Document: a with b-children having varying numbers of c's.
        let d = doc("<a><b><c/></b><b><c/><c/></b><b/></a>");
        // Query: a[b[c]][b[c]] — ordered pairs of distinct b's each
        // matched with one of their c's: legs (b1,b2): 1*2 + (b2,b1): 2*1
        // = 4 (b3 has no c).
        let labels = d.labels().clone();
        let (a, b, c) = (
            labels.get("a").unwrap(),
            labels.get("b").unwrap(),
            labels.get("c").unwrap(),
        );
        let mut q = crate::twig::Twig::single(a);
        let x = q.add_child(q.root(), b);
        q.add_child(x, c);
        let y = q.add_child(q.root(), b);
        q.add_child(y, c);
        assert_eq!(count_matches(&d, &q), 4);
    }

    #[test]
    fn root_of_twig_matches_anywhere() {
        let d = doc("<r><x><a><b/></a></x><a><b/></a></r>");
        assert_eq!(count(&d, "a/b"), 2);
    }

    #[test]
    fn recursive_labels() {
        // Nested <s> elements: s/s pairs.
        let d = doc("<s><s><s/></s><s/></s>");
        // Parent-child s/s edges: (1,2),(2,3),(1,4) -> 3 matches.
        assert_eq!(count(&d, "s/s"), 3);
        // s/s/s chains: (1,2,3) -> 1.
        assert_eq!(count(&d, "s/s/s"), 1);
        // s[s][s]: nodes with >=2 distinct s children: node1 has children
        // {2,4}: ordered pairs = 2. Node 2 has one child. Total 2.
        let labels = d.labels().clone();
        let s = labels.get("s").unwrap();
        let mut q = crate::twig::Twig::single(s);
        q.add_child(q.root(), s);
        q.add_child(q.root(), s);
        assert_eq!(count_matches(&d, &q), 2);
    }

    #[test]
    fn count_by_root_sums_to_count_and_anchors_correctly() {
        let d = doc("<r><a><b/><b/></a><a><b/></a><x><a/></x></r>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b", &mut labels).unwrap();
        let by_root = counter.count_by_root(&q);
        let total: u64 = by_root.iter().map(|&(_, m)| m).sum();
        assert_eq!(total, counter.count(&q));
        assert_eq!(by_root.len(), 2, "two `a` nodes have b children");
        for (v, m) in by_root {
            assert_eq!(d.label_name(d.label(v)), "a");
            assert!(m >= 1);
        }
        // Single-node twig anchors at every labeled node.
        let q1 = parse_twig("a", &mut labels).unwrap();
        assert_eq!(counter.count_by_root(&q1).len(), 3);
    }

    #[test]
    fn count_by_root_is_sorted_by_node_id() {
        let d = doc("<r><a><b/></a><x><a><b/></a></x><a><b/></a></r>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b", &mut labels).unwrap();
        let by_root = counter.count_by_root(&q);
        assert_eq!(by_root.len(), 3);
        assert!(by_root.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
    }

    #[test]
    fn count_by_root_empty_for_zero_queries() {
        let d = doc("<r><a/></r>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b", &mut labels).unwrap();
        assert!(counter.count_by_root(&q).is_empty());
    }

    #[test]
    fn counter_reuse_across_queries() {
        let d = doc("<a><b><c/></b><b><c/></b></a>");
        let counter = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        let q1 = parse_twig("a/b", &mut labels).unwrap();
        let q2 = parse_twig("b/c", &mut labels).unwrap();
        assert_eq!(counter.count(&q1), 2);
        assert_eq!(counter.count(&q2), 2);
        assert_eq!(counter.count(&q1), 2, "counter is stateless across queries");
    }

    #[test]
    fn shared_index_counter_matches_owning_counter() {
        let d = doc("<r><a><b/><c/></a><a><b/></a><b><c/></b></r>");
        let index = tl_xml::DocIndex::new(&d);
        let shared = MatchCounter::with_index(&d, &index);
        let owned = MatchCounter::new(&d);
        let mut labels = d.labels().clone();
        for q in ["a", "a/b", "a[b][c]", "b/c", "r/a/b"] {
            let twig = parse_twig(q, &mut labels).unwrap();
            assert_eq!(shared.count(&twig), owned.count(&twig), "query {q}");
        }
        assert_eq!(index.heap_bytes(), shared.index().heap_bytes());
    }

    #[test]
    fn oversized_sibling_group_errors_gracefully() {
        let d = doc("<a><b/></a>");
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = crate::twig::Twig::single(a);
        for _ in 0..=MAX_SIBLING_GROUP {
            q.add_child(q.root(), b);
        }
        let counter = MatchCounter::new(&d);
        assert_eq!(
            counter.try_count(&q),
            Err(MatchError::GroupTooLarge {
                size: MAX_SIBLING_GROUP + 1,
                max: MAX_SIBLING_GROUP,
            })
        );
        // The infallible API saturates instead of panicking.
        assert_eq!(counter.count(&q), u64::MAX);
        let msg = MatchError::GroupTooLarge {
            size: MAX_SIBLING_GROUP + 1,
            max: MAX_SIBLING_GROUP,
        }
        .to_string();
        assert!(msg.contains("same-label sibling"), "{msg}");
    }

    #[test]
    fn max_group_boundary_is_accepted() {
        // Exactly MAX_SIBLING_GROUP same-label children is in range; the
        // document has fewer b's than the group needs, so the count is 0
        // (fewer document children than query children).
        let d = doc("<a><b/><b/></a>");
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = crate::twig::Twig::single(a);
        for _ in 0..MAX_SIBLING_GROUP {
            q.add_child(q.root(), b);
        }
        assert_eq!(MatchCounter::new(&d).try_count(&q), Ok(0));
    }

    #[test]
    fn deep_query_on_deep_document() {
        let mut s = String::new();
        for _ in 0..50 {
            s.push_str("<d>");
        }
        for _ in 0..50 {
            s.push_str("</d>");
        }
        let d = doc(&s);
        let labels = d.labels().clone();
        let dl = labels.get("d").unwrap();
        let q = crate::twig::Twig::path(&[dl; 10]);
        // Chains of 10 consecutive d's in a 50-chain: 41.
        assert_eq!(count_matches(&d, &q), 41);
    }

    #[test]
    fn wide_fanout_counts() {
        let mut s = String::from("<a>");
        for _ in 0..1000 {
            s.push_str("<b/>");
        }
        s.push_str("</a>");
        let d = doc(&s);
        assert_eq!(count(&d, "a/b"), 1000);
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = crate::twig::Twig::single(a);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        // Ordered triples of distinct b's: 1000*999*998.
        assert_eq!(count_matches(&d, &q), 1000 * 999 * 998);
    }

    #[test]
    fn observed_counter_reports_calls_and_m_entries() {
        let d = doc("<a><b><c/></b><b><c/></b></a>");
        let rec = tl_obs::MetricsRecorder::new();
        let counter = MatchCounter::new(&d).observed(&rec);
        let mut labels = d.labels().clone();
        let q = parse_twig("a/b/c", &mut labels).unwrap();
        let plain = MatchCounter::new(&d).count(&q);
        assert_eq!(counter.count(&q), plain, "recording must not change counts");
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::TWIG_MATCH_CALLS], 1);
        // Non-leaf query nodes a (1 candidate) and b (2 candidates).
        let h = &snap.histograms[tl_obs::names::TWIG_MATCH_M_ENTRIES];
        assert_eq!((h.count, h.sum), (1, 3));
    }

    #[test]
    fn lane_split_folds_match_sequential_saturating_sums() {
        // Lengths straddle the chunks_exact boundary (remainder 0..=3) and
        // include saturating inputs; lane order must not change the result.
        for len in 0..13usize {
            let values: Vec<u64> = (0..len as u64).map(|i| i * i + 1).collect();
            let seq = values.iter().fold(0u64, |a, &b| a.saturating_add(b));
            assert_eq!(sum_saturating(&values), seq, "len {len}");
            let ranks: Vec<u32> = (0..len as u32).rev().collect();
            let gathered = ranks
                .iter()
                .fold(0u64, |a, &r| a.saturating_add(values[r as usize]));
            assert_eq!(
                sum_gather_saturating(&values, &ranks),
                gathered,
                "len {len}"
            );
        }
        let big = vec![u64::MAX / 2; 7];
        assert_eq!(sum_saturating(&big), u64::MAX, "saturation is absorbing");
        assert_eq!(
            sum_gather_saturating(&big, &[0, 1, 2, 3, 4, 5, 6]),
            u64::MAX
        );
    }

    #[test]
    fn isomorphic_queries_have_equal_counts() {
        let d = doc("<a><b/><c><x/></c><c/></a>");
        let mut labels = d.labels().clone();
        let q1 = parse_twig("a[b][c[x]]", &mut labels).unwrap();
        let q2 = parse_twig("a[c[x]][b]", &mut labels).unwrap();
        assert_eq!(count_matches(&d, &q1), count_matches(&d, &q2));
    }
}
