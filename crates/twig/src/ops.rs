//! Structural decomposition primitives (paper §3).
//!
//! These are the pure tree operations beneath both estimators; the
//! probabilistic arithmetic lives in the `treelattice` crate.
//!
//! * [`decompose_pair`] — the recursive scheme's single step: given two
//!   removable nodes `u ≠ v` of `T`, produce `(T1, T2, T12)` with
//!   `T1 = T − v`, `T2 = T − u`, `T12 = T − u − v` (Lemma 1's operands:
//!   `|T1| = |T2| = |T| − 1`, `|T12| = |T| − 2`, maximal overlap).
//! * [`removable_pairs`] — all candidate `(u, v)` pairs (the voting scheme
//!   averages over these).
//! * [`fixed_cover`] — Lemma 2's constructive pre-order covering of `T` by
//!   `|T| − k + 1` overlapping k-subtrees, each sharing a (k-1)-subtree
//!   with the part already covered.

use crate::twig::{Twig, TwigNodeId};

/// The operands of one recursive-decomposition step.
#[derive(Clone, Debug)]
pub struct PairDecomposition {
    /// `T` minus the second removable node.
    pub t1: Twig,
    /// `T` minus the first removable node.
    pub t2: Twig,
    /// The common part `T1 ∩ T2 = T` minus both nodes.
    pub t12: Twig,
}

/// All unordered pairs of simultaneously removable nodes of `twig`.
///
/// Every twig of size ≥ 3 has at least one pair (it has two leaves, counting
/// a degree-1 root as a leaf).
pub fn removable_pairs(twig: &Twig) -> Vec<(TwigNodeId, TwigNodeId)> {
    let r = twig.removable_nodes();
    let mut pairs = Vec::with_capacity(r.len() * (r.len().saturating_sub(1)) / 2);
    for i in 0..r.len() {
        for j in (i + 1)..r.len() {
            pairs.push((r[i], r[j]));
        }
    }
    pairs
}

/// Performs one decomposition step at nodes `u` and `v`.
///
/// # Panics
///
/// Panics if `u == v`, either node is not removable, or the twig has fewer
/// than 3 nodes (removing two would not leave a tree).
pub fn decompose_pair(twig: &Twig, u: TwigNodeId, v: TwigNodeId) -> PairDecomposition {
    assert!(u != v, "decomposition nodes must differ");
    assert!(twig.len() >= 3, "twig too small to decompose");
    let t1 = twig.remove_node(v);
    let t2 = twig.remove_node(u);
    let keep: Vec<TwigNodeId> = twig.nodes().filter(|&n| n != u && n != v).collect();
    let t12 = twig.subtwig(&keep);
    PairDecomposition { t1, t2, t12 }
}

/// [`removable_pairs`] into caller-provided buffers (both cleared first):
/// `nodes` receives the removable node set, `out` the unordered pairs in the
/// same `(i, j < i)` enumeration order. The allocation-free twin for the
/// iterative evaluator's expansion loop.
pub fn removable_pairs_into(
    twig: &Twig,
    nodes: &mut Vec<TwigNodeId>,
    out: &mut Vec<(TwigNodeId, TwigNodeId)>,
) {
    nodes.clear();
    nodes.extend(twig.nodes().filter(|&n| twig.children(n).is_empty()));
    if twig.len() >= 2 && twig.children(twig.root()).len() == 1 {
        nodes.push(twig.root());
    }
    out.clear();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            out.push((nodes[i], nodes[j]));
        }
    }
}

/// [`decompose_pair`] into caller-provided twigs, reusing their buffers.
/// The operands are structurally identical to `decompose_pair`'s: all three
/// are rebuilt by pre-order walks, so node numbering matches the allocating
/// variant exactly.
///
/// # Panics
///
/// Panics under the same conditions as [`decompose_pair`].
pub fn decompose_pair_into(
    twig: &Twig,
    u: TwigNodeId,
    v: TwigNodeId,
    t1: &mut Twig,
    t2: &mut Twig,
    t12: &mut Twig,
) {
    assert!(u != v, "decomposition nodes must differ");
    assert!(twig.len() >= 3, "twig too small to decompose");
    twig.remove_node_into(v, t1);
    twig.remove_node_into(u, t2);
    remove_two_into(twig, u, v, t12);
}

/// Rebuilds `twig − u − v` into `out` by one pre-order walk skipping both
/// nodes. Both are removable in `twig` (leaves or a degree-1 root), so at
/// most one of them is the root — and for `|T| ≥ 3` a degree-1 root's only
/// child has children of its own, hence is never itself removable, so root
/// promotion happens at most once.
fn remove_two_into(twig: &Twig, u: TwigNodeId, v: TwigNodeId, out: &mut Twig) {
    let old_root = twig.root();
    let root = if u == old_root || v == old_root {
        twig.children(old_root)[0]
    } else {
        old_root
    };
    debug_assert!(root != u && root != v, "double root promotion");
    out.reset(twig.label(root));
    let mut stack: Vec<(TwigNodeId, u32)> = Vec::with_capacity(twig.len());
    for &c in twig.children(root).iter().rev() {
        if c != u && c != v {
            stack.push((c, 0));
        }
    }
    while let Some((m, p)) = stack.pop() {
        let id = out.add_child(p, twig.label(m));
        for &c in twig.children(m).iter().rev() {
            if c != u && c != v {
                stack.push((c, id));
            }
        }
    }
}

/// One step of the fix-sized covering scheme.
#[derive(Clone, Debug)]
pub struct CoverStep {
    /// The covering k-subtree `t_i`.
    pub subtree: Twig,
    /// `t_i ∩ T_{covered}` — a (k-1)-subtree — for every step after the
    /// first.
    pub overlap: Option<Twig>,
}

/// One cover step as node-id sets over the *original* twig — the
/// enumeration hook beneath [`fixed_cover_with`]. Extracted subtwigs lose
/// the correspondence to the covered twig's nodes; property suites that
/// check Lemma 2's set-level invariants (overlap ⊆ covered part, contains
/// `parent(v)`, connected, size `k − 1`) need the raw sets.
#[derive(Clone, Debug)]
pub struct CoverStepSets {
    /// Node ids of the covering k-subtree, pre-order sorted.
    pub subtree: Vec<TwigNodeId>,
    /// Node ids of the (k-1)-overlap with the covered part; `None` for the
    /// first step.
    pub overlap: Option<Vec<TwigNodeId>>,
    /// The single newly covered node (`None` for the first step, which
    /// covers the whole k-prefix at once).
    pub added: Option<TwigNodeId>,
}

/// How the (k-1)-node overlap region is grown around `parent(v)` when
/// covering a new node — different strategies yield different (equally
/// valid) Lemma 2 covers, which the fix-sized voting scheme averages over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverStrategy {
    /// Prefer the ancestor chain, then covered children (the default; on
    /// path queries this reproduces the Markov window of Lemma 4).
    AncestorsFirst,
    /// Breadth-first over covered neighbors, children before the parent.
    ChildrenFirst,
}

/// Covers `twig` with `|T| − k + 1` k-subtrees following Lemma 2: the first
/// subtree is the pre-order prefix of `k` nodes; each later subtree adds one
/// uncovered node `v` on top of a connected (k-1)-node subset of the covered
/// part that contains `parent(v)`, chosen ancestor-first so that on path
/// queries the scheme degenerates to the order-(k-1) Markov model (Lemma 4).
///
/// # Panics
///
/// Panics unless `2 ≤ k ≤ |T|`.
pub fn fixed_cover(twig: &Twig, k: usize) -> Vec<CoverStep> {
    fixed_cover_with(twig, k, CoverStrategy::AncestorsFirst)
}

/// [`fixed_cover`] with an explicit overlap-growth strategy.
///
/// # Panics
///
/// Panics unless `2 ≤ k ≤ |T|`.
pub fn fixed_cover_with(twig: &Twig, k: usize, strategy: CoverStrategy) -> Vec<CoverStep> {
    fixed_cover_sets(twig, k, strategy)
        .into_iter()
        .map(|s| CoverStep {
            subtree: twig.subtwig(&s.subtree),
            overlap: s.overlap.map(|o| twig.subtwig(&o)),
        })
        .collect()
}

/// [`fixed_cover_with`], but returning node-id sets over `twig` instead of
/// extracted subtwigs. See [`CoverStepSets`].
///
/// # Panics
///
/// Panics unless `2 ≤ k ≤ |T|`.
pub fn fixed_cover_sets(twig: &Twig, k: usize, strategy: CoverStrategy) -> Vec<CoverStepSets> {
    assert!(k >= 2, "fixed cover requires k >= 2");
    assert!(k <= twig.len(), "k exceeds twig size");
    let order = twig.pre_order();
    let mut covered = vec![false; twig.len()];
    let mut steps = Vec::with_capacity(twig.len() - k + 1);

    // First subtree: pre-order prefix (always connected, contains the root).
    let prefix: Vec<TwigNodeId> = order[..k].to_vec();
    for &n in &prefix {
        covered[n as usize] = true;
    }
    steps.push(CoverStepSets {
        subtree: prefix,
        overlap: None,
        added: None,
    });

    for &v in &order[k..] {
        let p = twig
            .parent(v)
            .expect("non-prefix pre-order node has a parent");
        debug_assert!(covered[p as usize], "pre-order guarantees parent covered");
        let overlap_set = grow_connected(twig, p, k - 1, &covered, strategy);
        let mut subtree_set = overlap_set.clone();
        subtree_set.push(v);
        steps.push(CoverStepSets {
            subtree: subtree_set,
            overlap: Some(overlap_set),
            added: Some(v),
        });
        covered[v as usize] = true;
    }
    steps
}

/// Enumerates every connected node subset of `twig` with exactly `size`
/// nodes, each sorted ascending. Connected subsets of a tree are subtrees:
/// each has a unique topmost node, so the enumeration iterates candidate
/// top nodes and extends downward with an include/exclude sweep that
/// visits each subset exactly once. Exponential in the worst case — meant
/// for test twigs, not production paths.
pub fn connected_node_sets(twig: &Twig, size: usize) -> Vec<Vec<TwigNodeId>> {
    let mut out = Vec::new();
    if size == 0 || size > twig.len() {
        return out;
    }
    for top in twig.nodes() {
        let mut set = vec![top];
        let cands: Vec<TwigNodeId> = twig.children(top).to_vec();
        extend_connected(twig, &mut set, cands, size, &mut out);
    }
    out
}

fn extend_connected(
    twig: &Twig,
    set: &mut Vec<TwigNodeId>,
    mut cands: Vec<TwigNodeId>,
    size: usize,
    out: &mut Vec<Vec<TwigNodeId>>,
) {
    if set.len() == size {
        let mut s = set.clone();
        s.sort_unstable();
        out.push(s);
        return;
    }
    // Include/exclude on the candidate frontier: taking `c` opens its
    // children; skipping `c` bars it for the rest of this branch, so no
    // subset is produced twice.
    while let Some(c) = cands.pop() {
        let mut next = cands.clone();
        next.extend_from_slice(twig.children(c));
        set.push(c);
        extend_connected(twig, set, next, size, out);
        set.pop();
    }
}

/// Grows a connected set of `want` covered nodes starting from `seed`.
fn grow_connected(
    twig: &Twig,
    seed: TwigNodeId,
    want: usize,
    covered: &[bool],
    strategy: CoverStrategy,
) -> Vec<TwigNodeId> {
    debug_assert!(covered[seed as usize]);
    let mut set = vec![seed];
    let mut in_set = vec![false; twig.len()];
    in_set[seed as usize] = true;

    if strategy == CoverStrategy::AncestorsFirst {
        // Ancestor chain first: on path twigs this reproduces the Markov
        // window.
        let mut cur = seed;
        while set.len() < want {
            match twig.parent(cur) {
                Some(p) if covered[p as usize] && !in_set[p as usize] => {
                    in_set[p as usize] = true;
                    set.push(p);
                    cur = p;
                }
                _ => break,
            }
        }
    }
    // BFS over covered neighbors of anything already selected; under
    // ChildrenFirst the parent link is enqueued after the children.
    let mut frontier = 0usize;
    while set.len() < want && frontier < set.len() {
        let n = set[frontier];
        frontier += 1;
        let push = |node: TwigNodeId, set: &mut Vec<TwigNodeId>, in_set: &mut Vec<bool>| {
            if set.len() < want && covered[node as usize] && !in_set[node as usize] {
                in_set[node as usize] = true;
                set.push(node);
            }
        };
        for &c in twig.children(n) {
            push(c, &mut set, &mut in_set);
        }
        if let Some(p) = twig.parent(n) {
            push(p, &mut set, &mut in_set);
        }
    }
    assert_eq!(
        set.len(),
        want,
        "covered region smaller than k-1; cover invariant violated"
    );
    set
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use crate::canonical::key_of;
    use crate::parser::parse_twig;

    use super::*;

    fn twig(q: &str) -> (Twig, LabelInterner) {
        let mut it = LabelInterner::new();
        let t = parse_twig(q, &mut it).unwrap();
        (t, it)
    }

    #[test]
    fn into_variants_match_allocating_decomposition() {
        for q in [
            "a/b/c",
            "a[b][c]",
            "a[b[c][d]][e]",
            "a[b][b]",
            "a/b[c][c/d]",
        ] {
            let (t, _it) = twig(q);
            let pairs = removable_pairs(&t);
            let mut nodes_scratch = Vec::new();
            let mut pairs_into = Vec::new();
            removable_pairs_into(&t, &mut nodes_scratch, &mut pairs_into);
            assert_eq!(pairs, pairs_into, "pair enumeration diverged for {q}");
            let (mut t1, mut t2, mut t12) = (
                Twig::single(t.label(0)),
                Twig::single(t.label(0)),
                Twig::single(t.label(0)),
            );
            for &(u, v) in &pairs {
                let d = decompose_pair(&t, u, v);
                decompose_pair_into(&t, u, v, &mut t1, &mut t2, &mut t12);
                assert_eq!(t1, d.t1, "t1 diverged for {q} at ({u},{v})");
                assert_eq!(t2, d.t2, "t2 diverged for {q} at ({u},{v})");
                assert_eq!(t12, d.t12, "t12 diverged for {q} at ({u},{v})");
            }
        }
    }

    #[test]
    fn decompose_path() {
        let (t, it) = twig("a/b/c");
        let pairs = removable_pairs(&t);
        assert_eq!(pairs.len(), 1, "path of 3 has exactly one removable pair");
        let (u, v) = pairs[0];
        let d = decompose_pair(&t, u, v);
        assert_eq!(d.t1.len(), 2);
        assert_eq!(d.t2.len(), 2);
        assert_eq!(d.t12.len(), 1);
        let strings: Vec<String> = [&d.t1, &d.t2]
            .iter()
            .map(|t| t.to_query_string(&it))
            .collect();
        assert!(strings.contains(&"a[b]".to_owned()), "{strings:?}");
        assert!(strings.contains(&"b[c]".to_owned()), "{strings:?}");
        assert_eq!(d.t12.to_query_string(&it), "b");
    }

    #[test]
    fn decompose_star() {
        // a[b][c][d] : removable = {b, c, d}; 3 pairs.
        let (t, it) = twig("a[b][c][d]");
        let pairs = removable_pairs(&t);
        assert_eq!(pairs.len(), 3);
        let (u, v) = pairs[0];
        let d = decompose_pair(&t, u, v);
        assert_eq!(d.t12.len(), 2);
        assert!(d.t12.to_query_string(&it).starts_with('a'));
    }

    #[test]
    fn figure3a_first_level() {
        // Paper Figure 3(a): the 7-node twig a[b[c? ...]] — we use its
        // abstract shape a[d[c][f[e][g]]] and check the first recursion.
        let (t, _) = twig("a[b[d[c]][f[e][g]]]");
        assert_eq!(t.len(), 7);
        let pairs = removable_pairs(&t);
        // Leaves: c, e, g. Root has degree 1 -> also removable.
        assert_eq!(pairs.len(), 6);
        for (u, v) in pairs {
            let d = decompose_pair(&t, u, v);
            assert_eq!(d.t1.len(), 6);
            assert_eq!(d.t2.len(), 6);
            assert_eq!(d.t12.len(), 5);
        }
    }

    #[test]
    fn overlap_is_intersection() {
        let (t, _) = twig("a[b][c]");
        let (u, v) = removable_pairs(&t)[0];
        let d = decompose_pair(&t, u, v);
        // T1 and T2 are a[b] and a[c]; T12 = a.
        assert_eq!(d.t12.len(), 1);
        assert_ne!(key_of(&d.t1), key_of(&d.t2));
    }

    #[test]
    fn fixed_cover_of_path_is_markov_windows() {
        let (t, it) = twig("a/b/c/d/e");
        let steps = fixed_cover(&t, 3);
        assert_eq!(steps.len(), 3); // 5 - 3 + 1
        let subs: Vec<String> = steps
            .iter()
            .map(|s| s.subtree.to_query_string(&it))
            .collect();
        assert_eq!(subs, ["a[b[c]]", "b[c[d]]", "c[d[e]]"]);
        let overlaps: Vec<String> = steps
            .iter()
            .filter_map(|s| s.overlap.as_ref().map(|o| o.to_query_string(&it)))
            .collect();
        assert_eq!(overlaps, ["b[c]", "c[d]"]);
    }

    #[test]
    fn fixed_cover_covers_every_node() {
        let (t, _) = twig("a[b[d][e]][c[f/g]]");
        let n = t.len();
        for k in 2..=n {
            let steps = fixed_cover(&t, k);
            assert_eq!(steps.len(), n - k + 1, "k={k}");
            for (i, s) in steps.iter().enumerate() {
                assert_eq!(s.subtree.len(), k, "step {i} subtree size");
                if i == 0 {
                    assert!(s.overlap.is_none());
                } else {
                    assert_eq!(s.overlap.as_ref().unwrap().len(), k - 1);
                }
            }
        }
    }

    #[test]
    fn fixed_cover_figure3b_shape() {
        // Figure 3(b) covers a 7-node twig with 4-subtrees: 4 steps.
        let (t, _) = twig("a[b[d[c]][f[e][g]]]");
        assert_eq!(t.len(), 7);
        let steps = fixed_cover(&t, 4);
        assert_eq!(steps.len(), 4);
    }

    #[test]
    fn overlap_is_subtree_of_both() {
        use crate::matcher::count_matches;
        use tl_xml::{parse_document, ParseOptions};
        // On any document, the overlap of step i must have selectivity >=
        // each of the subtrees containing it (monotonicity sanity check).
        let doc = parse_document(
            b"<a><b><d><c/></d><f><e/><g/></f></b><b><d/><f><e/></f></b></a>",
            ParseOptions::default(),
        )
        .unwrap();
        let mut it = doc.labels().clone();
        let t = parse_twig("a[b[d][f[e]]]", &mut it).unwrap();
        for k in 2..t.len() {
            for step in fixed_cover(&t, k) {
                if let Some(overlap) = step.overlap {
                    let c_sub = count_matches(&doc, &step.subtree);
                    let c_ov = count_matches(&doc, &overlap);
                    assert!(
                        c_ov >= c_sub.min(1) * u64::from(c_sub > 0),
                        "an occurring subtree implies its overlap occurs"
                    );
                    if c_sub > 0 {
                        assert!(c_ov > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn cover_sets_agree_with_extracted_cover() {
        let (t, _) = twig("a[b[d][e]][c[f/g]]");
        for k in 2..=t.len() {
            for strategy in [CoverStrategy::AncestorsFirst, CoverStrategy::ChildrenFirst] {
                let sets = fixed_cover_sets(&t, k, strategy);
                let steps = fixed_cover_with(&t, k, strategy);
                assert_eq!(sets.len(), steps.len());
                for (s, step) in sets.iter().zip(&steps) {
                    assert_eq!(s.subtree.len(), step.subtree.len());
                    assert_eq!(key_of(&t.subtwig(&s.subtree)), key_of(&step.subtree));
                    match (&s.overlap, &step.overlap) {
                        (None, None) => assert!(s.added.is_none()),
                        (Some(o), Some(ov)) => {
                            assert_eq!(key_of(&t.subtwig(o)), key_of(ov));
                            let v = s.added.expect("later steps add one node");
                            assert!(s.subtree.contains(&v));
                            assert!(!o.contains(&v));
                        }
                        _ => panic!("set/twig overlap mismatch"),
                    }
                }
            }
        }
    }

    #[test]
    fn connected_node_sets_enumerates_exactly_the_connected_subsets() {
        let (t, _) = twig("a[b[d][e]][c]");
        // Size 1: every node. Size n: the whole twig.
        assert_eq!(connected_node_sets(&t, 1).len(), t.len());
        assert_eq!(
            connected_node_sets(&t, t.len()),
            vec![{
                let mut all: Vec<_> = t.nodes().collect();
                all.sort_unstable();
                all
            }]
        );
        for size in 1..=t.len() {
            let sets = connected_node_sets(&t, size);
            // No duplicates, each connected (subtwig() panics on a
            // disconnected set), each of the right size.
            let mut seen = sets.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), sets.len(), "duplicate sets at size {size}");
            for s in &sets {
                assert_eq!(s.len(), size);
                assert_eq!(t.subtwig(s).len(), size);
            }
        }
        // Hand count for size 2: one set per edge.
        assert_eq!(connected_node_sets(&t, 2).len(), t.len() - 1);
    }

    #[test]
    #[should_panic(expected = "k exceeds twig size")]
    fn cover_k_larger_than_twig_panics() {
        let (t, _) = twig("a/b");
        let _ = fixed_cover(&t, 3);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn decompose_same_node_panics() {
        let (t, _) = twig("a[b][c]");
        let leaf = t.leaves()[0];
        let _ = decompose_pair(&t, leaf, leaf);
    }
}
