//! Surface syntax for twig queries.
//!
//! The grammar is a small XPath-like fragment, sufficient for the paper's
//! branching path expressions (parent-child axes only):
//!
//! ```text
//! twig   := '/'? '/'? step
//! step   := name predicate* ('/' step)?
//! pred   := '[' step ']'
//! name   := [A-Za-z_@:][A-Za-z0-9_@:.-]*
//! ```
//!
//! Examples: `a/b/c` (a path), `//laptop[brand][price]` (Figure 1(b)),
//! `a[b[d]][c/e]` (nested branches). A leading `/` or `//` is accepted and
//! ignored — Definition 1 matches a twig anywhere in the document, which is
//! descendant-or-self semantics at the root.
//!
//! ## Value predicates
//!
//! When parsed with [`parse_twig_valued`], steps may carry equality
//! predicates: `laptop[brand="Dell"]` or `price[="999"]`. The literal is
//! mapped to the same synthetic value label the document parser produced
//! (see [`tl_xml::ValueMode`]), so a value predicate is just one more twig
//! edge and the estimators need no changes. The plain [`parse_twig`]
//! rejects value predicates with a clear error.

use tl_xml::{LabelInterner, ValueMode};

use crate::twig::{Twig, TwigNodeId};

/// Error from twig parsing, with a byte offset into the query string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwigParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for TwigParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TwigParseError {}

impl From<TwigParseError> for tl_fault::Fault {
    fn from(err: TwigParseError) -> Self {
        tl_fault::Fault::parse(err.to_string())
    }
}

/// Parses a twig query, interning any new labels into `labels`.
///
/// # Examples
///
/// ```
/// use tl_xml::LabelInterner;
/// use tl_twig::parse_twig;
///
/// let mut it = LabelInterner::new();
/// let t = parse_twig("//laptop[brand][price]", &mut it).unwrap();
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.to_query_string(&it), "laptop[brand][price]");
/// ```
pub fn parse_twig(query: &str, labels: &mut LabelInterner) -> Result<Twig, TwigParseError> {
    Parser {
        input: query.as_bytes(),
        pos: 0,
        values: None,
    }
    .parse(&mut |name| Ok(labels.intern(name)))
}

/// Parses a twig query that may contain value predicates
/// (`laptop[brand="Dell"]`, `price[="999"]`), mapping literals with `mode`
/// — which must match the mode the document was parsed with.
pub fn parse_twig_valued(
    query: &str,
    labels: &mut LabelInterner,
    mode: ValueMode,
) -> Result<Twig, TwigParseError> {
    Parser {
        input: query.as_bytes(),
        pos: 0,
        values: Some(mode),
    }
    .parse(&mut |name| Ok(labels.intern(name)))
}

/// Parses a twig query against a fixed interner. Labels that do not occur in
/// `labels` produce an error — useful when a caller wants to reject queries
/// that cannot possibly match a given document. (Estimators instead treat
/// unknown labels as selectivity 0; they intern first.)
pub fn parse_twig_in(query: &str, labels: &LabelInterner) -> Result<Twig, TwigParseError> {
    Parser {
        input: query.as_bytes(),
        pos: 0,
        values: None,
    }
    .parse(&mut |name| {
        labels
            .get(name)
            .ok_or_else(|| format!("unknown label `{name}`"))
    })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    /// `Some(mode)` enables value-predicate syntax.
    values: Option<ValueMode>,
}

type LabelFn<'f> = dyn FnMut(&str) -> Result<tl_xml::LabelId, String> + 'f;

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> TwigParseError {
        TwigParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse(mut self, intern: &mut LabelFn<'_>) -> Result<Twig, TwigParseError> {
        self.skip_ws();
        // Optional leading '/' or '//'.
        while self.peek() == Some(b'/') {
            self.pos += 1;
        }
        self.skip_ws();
        let name = self.read_name()?;
        let label = intern(&name).map_err(|m| self.error(m))?;
        let mut twig = Twig::single(label);
        self.parse_rest(twig.root(), &mut twig, intern)?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("trailing input after twig"));
        }
        Ok(twig)
    }

    /// Parses predicates and a trailing `/step` chain under `node`.
    fn parse_rest(
        &mut self,
        node: TwigNodeId,
        twig: &mut Twig,
        intern: &mut LabelFn<'_>,
    ) -> Result<(), TwigParseError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'=') => {
                    // Value predicate directly on this step: name="lit".
                    self.parse_value_predicate(node, twig, intern)?;
                }
                Some(b'[') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b'=') {
                        // [="literal"] — value predicate on `node`.
                        self.parse_value_predicate(node, twig, intern)?;
                    } else {
                        let name = self.read_name()?;
                        let label = intern(&name).map_err(|m| self.error(m))?;
                        let child = twig.add_child(node, label);
                        self.parse_rest(child, twig, intern)?;
                    }
                    self.skip_ws();
                    if self.peek() != Some(b']') {
                        return Err(self.error("expected ']'"));
                    }
                    self.pos += 1;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'/') {
                        return Err(self.error(
                            "descendant axis `//` is only allowed at the start of the query",
                        ));
                    }
                    self.skip_ws();
                    let name = self.read_name()?;
                    let label = intern(&name).map_err(|m| self.error(m))?;
                    let child = twig.add_child(node, label);
                    return self.parse_rest(child, twig, intern);
                }
                _ => return Ok(()),
            }
        }
    }

    /// Parses `= "literal"` and attaches the value label as a child of
    /// `node`.
    fn parse_value_predicate(
        &mut self,
        node: TwigNodeId,
        twig: &mut Twig,
        intern: &mut LabelFn<'_>,
    ) -> Result<(), TwigParseError> {
        debug_assert_eq!(self.peek(), Some(b'='));
        let Some(mode) = self.values else {
            return Err(self.error(
                "value predicates require parse_twig_valued with the document's ValueMode",
            ));
        };
        self.pos += 1;
        self.skip_ws();
        let literal = self.read_string_literal()?;
        let Some(value_label) = mode.value_label(&literal) else {
            return Err(self
                .error("value predicate literal is empty or values are ignored by the ValueMode"));
        };
        let label = intern(&value_label).map_err(|m| self.error(m))?;
        twig.add_child(node, label);
        Ok(())
    }

    /// Reads a double-quoted string literal with `\"` and `\\` escapes.
    fn read_string_literal(&mut self) -> Result<String, TwigParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.error("expected a double-quoted literal"));
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\')) => {
                            out.push(c);
                            self.pos += 1;
                        }
                        _ => return Err(self.error("invalid escape in string literal")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
        String::from_utf8(out).map_err(|_| self.error("literal is not valid UTF-8"))
    }

    fn read_name(&mut self) -> Result<String, TwigParseError> {
        let start = self.pos;
        let first = self.peek().ok_or_else(|| self.error("expected a name"))?;
        if !(first.is_ascii_alphabetic()
            || first == b'_'
            || first == b'@'
            || first == b':'
            || first >= 0x80)
        {
            return Err(self.error("expected a name"));
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'@' | b':' | b'.' | b'-')
                || b >= 0x80
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| self.error("name is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> (Twig, LabelInterner) {
        let mut it = LabelInterner::new();
        let t = parse_twig(q, &mut it).unwrap();
        (t, it)
    }

    use super::parse_twig_valued;

    #[test]
    fn single_node() {
        let (t, it) = parse("laptop");
        assert_eq!(t.len(), 1);
        assert_eq!(it.resolve(t.label(t.root())), "laptop");
    }

    #[test]
    fn plain_path() {
        let (t, _) = parse("a/b/c/d");
        assert!(t.is_path());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn figure1_query() {
        let (t, it) = parse("//laptop[brand][price]");
        assert_eq!(t.len(), 3);
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.to_query_string(&it), "laptop[brand][price]");
    }

    #[test]
    fn nested_predicates_and_paths() {
        let (t, it) = parse("a[b[d]][c/e]");
        assert_eq!(t.len(), 5);
        assert_eq!(t.to_query_string(&it), "a[b[d]][c[e]]");
    }

    #[test]
    fn predicate_then_path_continuation() {
        // a[b]/c : both b and c are children of a.
        let (t, _) = parse("a[b]/c");
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let (t, _) = parse("  a [ b ] / c ");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn round_trip_through_query_string() {
        let (t, it) = parse("r[a[x][y]][b/z]");
        let s = t.to_query_string(&it);
        let mut it2 = it.clone();
        let t2 = parse_twig(&s, &mut it2).unwrap();
        assert_eq!(
            crate::canonical::key_of(&t),
            crate::canonical::key_of(&t2),
            "parse(to_query_string(t)) is isomorphic to t"
        );
    }

    #[test]
    fn errors_unclosed_bracket() {
        let mut it = LabelInterner::new();
        let err = parse_twig("a[b", &mut it).unwrap_err();
        assert!(err.message.contains("']'"), "{err}");
    }

    #[test]
    fn errors_trailing_garbage() {
        let mut it = LabelInterner::new();
        let err = parse_twig("a]b", &mut it).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn errors_empty_input() {
        let mut it = LabelInterner::new();
        assert!(parse_twig("", &mut it).is_err());
        assert!(parse_twig("   ", &mut it).is_err());
    }

    #[test]
    fn errors_mid_query_descendant_axis() {
        let mut it = LabelInterner::new();
        let err = parse_twig("a//b", &mut it).unwrap_err();
        assert!(err.message.contains("descendant"), "{err}");
    }

    #[test]
    fn fixed_interner_rejects_unknown_labels() {
        let mut it = LabelInterner::new();
        it.intern("a");
        assert!(parse_twig_in("a", &it).is_ok());
        let err = parse_twig_in("a/b", &it).unwrap_err();
        assert!(err.message.contains("unknown label"), "{err}");
    }

    #[test]
    fn value_predicate_as_child_edge() {
        use tl_xml::ValueMode;
        let mut it = LabelInterner::new();
        let t = parse_twig_valued("laptop[brand=\"Dell\"]", &mut it, ValueMode::AsLabels).unwrap();
        // laptop -> brand -> =Dell
        assert_eq!(t.len(), 3);
        let brand = t.children(t.root())[0];
        let value = t.children(brand)[0];
        assert_eq!(it.resolve(t.label(value)), "=Dell");
    }

    #[test]
    fn value_predicate_on_current_step() {
        use tl_xml::ValueMode;
        let mut it = LabelInterner::new();
        let t = parse_twig_valued("price[=\"999\"]", &mut it, ValueMode::AsLabels).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(it.resolve(t.label(t.children(t.root())[0])), "=999");
    }

    #[test]
    fn value_predicate_bucketed_matches_document_mode() {
        use tl_xml::ValueMode;
        let mode = ValueMode::Bucketed(32);
        let mut it = LabelInterner::new();
        let t = parse_twig_valued("b[=\"Dell\"]", &mut it, mode).unwrap();
        let expected = mode.value_label("Dell").unwrap();
        assert_eq!(it.resolve(t.label(t.children(t.root())[0])), expected);
    }

    #[test]
    fn escapes_in_literals() {
        use tl_xml::ValueMode;
        let mut it = LabelInterner::new();
        let t = parse_twig_valued("a[=\"say \\\"hi\\\"\"]", &mut it, ValueMode::AsLabels).unwrap();
        assert_eq!(it.resolve(t.label(t.children(t.root())[0])), "=say \"hi\"");
    }

    #[test]
    fn plain_parser_rejects_value_predicates() {
        let mut it = LabelInterner::new();
        let err = parse_twig("a[b=\"Dell\"]", &mut it).unwrap_err();
        assert!(err.message.contains("parse_twig_valued"), "{err}");
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        use tl_xml::ValueMode;
        let mut it = LabelInterner::new();
        let err = parse_twig_valued("a[=\"oops]", &mut it, ValueMode::AsLabels).unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn mixed_structure_and_value_predicates() {
        use tl_xml::ValueMode;
        let mut it = LabelInterner::new();
        let t = parse_twig_valued(
            "movie[title=\"Heat\"][cast/actor[role=\"lead\"]]",
            &mut it,
            ValueMode::AsLabels,
        )
        .unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn attribute_style_names() {
        let (t, it) = parse("item[@id]");
        assert_eq!(t.len(), 2);
        assert_eq!(it.resolve(t.label(t.children(t.root())[0])), "@id");
    }
}
