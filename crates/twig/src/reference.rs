//! The pre-index exact-match kernel, retained as a reference.
//!
//! This is the hash-map formulation [`MatchCounter`](crate::MatchCounter)
//! used before the dense CSR rewrite: per-query-node m-tables are sparse
//! `FxHashMap<u32, u64>` keyed by document node id, document children are
//! gathered by walking sibling links and filtered by label inline, and the
//! label index is a freshly built `Vec<Vec<NodeId>>`. It is kept for two
//! jobs:
//!
//! * the `bench_match` criterion group and the `bench_matcher` harness
//!   time it against the dense kernel so the speedup stays measured, not
//!   assumed;
//! * the property tests cross-check both kernels against the brute-force
//!   enumerator, so a bug would have to hit three independent
//!   implementations identically to go unseen.
//!
//! Semantics match [`MatchCounter`](crate::MatchCounter) exactly, including
//! saturating arithmetic and the [`MAX_SIBLING_GROUP`] group bound (this
//! kernel saturates to `u64::MAX` on oversized groups instead of erroring).

use tl_xml::{Document, FxHashMap, LabelId, NodeId};

use crate::matcher::MAX_SIBLING_GROUP;
use crate::twig::{Twig, TwigNodeId};

/// Reusable sparse (hash-map) exact match counter over one document.
pub struct ReferenceMatchCounter<'d> {
    doc: &'d Document,
    by_label: Vec<Vec<NodeId>>,
}

impl<'d> ReferenceMatchCounter<'d> {
    /// Builds the counter (indexes the document by label).
    pub fn new(doc: &'d Document) -> Self {
        Self {
            doc,
            by_label: doc.nodes_by_label(),
        }
    }

    /// Number of document nodes labeled `label`.
    fn label_count(&self, label: LabelId) -> u64 {
        self.by_label
            .get(label.index())
            .map_or(0, |v| v.len() as u64)
    }

    /// Exact selectivity of `twig` in the document.
    pub fn count(&self, twig: &Twig) -> u64 {
        for n in twig.nodes() {
            if self.label_count(twig.label(n)) == 0 {
                return 0;
            }
        }
        if twig.len() == 1 {
            return self.label_count(twig.label(twig.root()));
        }

        let groups = child_groups(twig);
        let mut maps: Vec<FxHashMap<u32, u64>> = vec![FxHashMap::default(); twig.len()];
        let order = twig.pre_order();
        let mut child_buf: Vec<NodeId> = Vec::new();
        for &q in order.iter().rev() {
            if twig.children(q).is_empty() {
                continue;
            }
            let candidates = &self.by_label[twig.label(q).index()];
            let mut map = FxHashMap::default();
            'cand: for &v in candidates {
                child_buf.clear();
                child_buf.extend(self.doc.children(v));
                let mut total: u64 = 1;
                for group in &groups[q as usize] {
                    let f = self.group_count(twig, &maps, group, &child_buf);
                    if f == 0 {
                        continue 'cand;
                    }
                    total = total.saturating_mul(f);
                }
                map.insert(v.0, total);
            }
            maps[q as usize] = map;
        }

        maps[twig.root() as usize]
            .values()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    fn node_count(
        &self,
        twig: &Twig,
        maps: &[FxHashMap<u32, u64>],
        q: TwigNodeId,
        u: NodeId,
    ) -> u64 {
        if self.doc.label(u) != twig.label(q) {
            return 0;
        }
        if twig.children(q).is_empty() {
            1
        } else {
            maps[q as usize].get(&u.0).copied().unwrap_or(0)
        }
    }

    fn group_count(
        &self,
        twig: &Twig,
        maps: &[FxHashMap<u32, u64>],
        group: &ChildGroup,
        doc_children: &[NodeId],
    ) -> u64 {
        let label = group.label;
        if group.members.len() == 1 {
            let q = group.members[0];
            let mut sum: u64 = 0;
            for &u in doc_children {
                if self.doc.label(u) == label {
                    sum = sum.saturating_add(self.node_count(twig, maps, q, u));
                }
            }
            return sum;
        }
        let g = group.members.len();
        if g > MAX_SIBLING_GROUP {
            return u64::MAX;
        }
        let full = (1usize << g) - 1;
        let mut f = vec![0u64; full + 1];
        f[0] = 1;
        let mut weights = vec![0u64; g];
        for &u in doc_children {
            if self.doc.label(u) != label {
                continue;
            }
            let mut any = false;
            for (i, &q) in group.members.iter().enumerate() {
                weights[i] = self.node_count(twig, maps, q, u);
                any |= weights[i] != 0;
            }
            if !any {
                continue;
            }
            for mask in (1..=full).rev() {
                let mut add: u64 = 0;
                let mut bits = mask;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if weights[i] != 0 {
                        add = add.saturating_add(f[mask ^ (1 << i)].saturating_mul(weights[i]));
                    }
                }
                f[mask] = f[mask].saturating_add(add);
            }
        }
        f[full]
    }
}

struct ChildGroup {
    label: LabelId,
    members: Vec<TwigNodeId>,
}

fn child_groups(twig: &Twig) -> Vec<Vec<ChildGroup>> {
    let mut all = Vec::with_capacity(twig.len());
    for q in twig.nodes() {
        let mut groups: Vec<ChildGroup> = Vec::new();
        for &c in twig.children(q) {
            let label = twig.label(c);
            match groups.iter_mut().find(|g| g.label == label) {
                Some(g) => g.members.push(c),
                None => groups.push(ChildGroup {
                    label,
                    members: vec![c],
                }),
            }
        }
        all.push(groups);
    }
    all
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::matcher::MatchCounter;
    use crate::parser::parse_twig;

    use super::*;

    #[test]
    fn reference_agrees_with_dense_kernel() {
        let d = parse_document(
            b"<r><a><b/><b/><c/></a><a><b><c/></b></a><a/><b><c/><c/></b></r>",
            ParseOptions::default(),
        )
        .unwrap();
        let dense = MatchCounter::new(&d);
        let sparse = ReferenceMatchCounter::new(&d);
        let mut labels = d.labels().clone();
        for q in ["a", "a/b", "b/c", "a[b][c]", "a[b][b]", "r[a][a]", "a/b/c"] {
            let twig = parse_twig(q, &mut labels).unwrap();
            assert_eq!(dense.count(&twig), sparse.count(&twig), "query {q}");
        }
    }
}
