//! The twig query data structure.
//!
//! Twigs are tiny (the paper evaluates sizes 4–9), so the representation
//! favours simplicity over compaction: parallel vectors for labels and
//! parents plus an explicit child adjacency list. Node 0 is always the root
//! and nodes are stored in pre-order; every operation that derives a new
//! twig re-normalizes to this form.

use serde::{Deserialize, Serialize};
use tl_xml::{LabelId, LabelInterner};

/// Index of a node within a [`Twig`].
pub type TwigNodeId = u32;

/// Hard cap on twig size. Queries past this are rejected at construction;
/// the decomposition estimators are exponential in voting width, not size,
/// so this exists purely to keep indices in `u32` comfortable and recursion
/// bounded.
pub const MAX_TWIG_NODES: usize = 256;

/// A rooted, node-labeled twig query.
///
/// # Examples
///
/// ```
/// use tl_xml::LabelInterner;
/// use tl_twig::Twig;
///
/// let mut it = LabelInterner::new();
/// let (a, b, c) = (it.intern("a"), it.intern("b"), it.intern("c"));
/// let mut t = Twig::single(a);
/// let nb = t.add_child(t.root(), b);
/// t.add_child(t.root(), c);
/// t.add_child(nb, c);
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.to_query_string(&it), "a[b[c]][c]");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Twig {
    labels: Vec<LabelId>,
    /// Parent of each node; `u32::MAX` for the root.
    parents: Vec<u32>,
    children: Vec<Vec<u32>>,
}

impl Twig {
    const NO_PARENT: u32 = u32::MAX;

    /// A twig consisting of a single root node.
    pub fn single(label: LabelId) -> Self {
        Self {
            labels: vec![label],
            parents: vec![Self::NO_PARENT],
            children: vec![Vec::new()],
        }
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> TwigNodeId {
        0
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the twig has no nodes. Never true: a twig always has a root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of node `n`.
    #[inline]
    pub fn label(&self, n: TwigNodeId) -> LabelId {
        self.labels[n as usize]
    }

    /// Parent of node `n`, or `None` for the root.
    #[inline]
    pub fn parent(&self, n: TwigNodeId) -> Option<TwigNodeId> {
        let p = self.parents[n as usize];
        (p != Self::NO_PARENT).then_some(p)
    }

    /// Children of node `n`, in insertion order.
    #[inline]
    pub fn children(&self, n: TwigNodeId) -> &[TwigNodeId] {
        &self.children[n as usize]
    }

    /// Appends a new child labeled `label` under `parent`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the twig already holds [`MAX_TWIG_NODES`] nodes.
    pub fn add_child(&mut self, parent: TwigNodeId, label: LabelId) -> TwigNodeId {
        assert!(
            self.len() < MAX_TWIG_NODES,
            "twig exceeds MAX_TWIG_NODES = {MAX_TWIG_NODES}"
        );
        let id = self.labels.len() as u32;
        self.labels.push(label);
        self.parents.push(parent);
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        id
    }

    /// Removes node `n`, which must be the most recent [`Twig::add_child`]
    /// result and still childless — the exact inverse of that call. Lets
    /// the miner's candidate enumeration grow and shrink one scratch twig
    /// in place instead of cloning per extension.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not the last-added node or has children.
    pub fn pop_leaf(&mut self, n: TwigNodeId) {
        assert_eq!(n as usize, self.labels.len() - 1, "not the last node");
        assert!(self.children[n as usize].is_empty(), "not a leaf");
        let parent = self.parents[n as usize];
        let popped = self.children[parent as usize].pop();
        debug_assert_eq!(popped, Some(n));
        self.labels.pop();
        self.parents.pop();
        self.children.pop();
    }

    /// Resets the twig to a single root labeled `label`, retaining the
    /// allocated node buffers. Decode-heavy paths (the estimators' cache
    /// misses) use this to reuse one scratch twig across many decodes.
    pub fn reset(&mut self, label: LabelId) {
        self.labels.clear();
        self.labels.push(label);
        self.parents.clear();
        self.parents.push(Self::NO_PARENT);
        self.children.truncate(1);
        match self.children.first_mut() {
            Some(kids) => kids.clear(),
            None => self.children.push(Vec::new()),
        }
    }

    /// Rewrites every node's label through `map` (indexed by the old
    /// [`LabelId`]), translating the twig into another label universe —
    /// e.g. from one document's interner into a shared corpus interner.
    /// The structure is untouched; callers must re-canonicalize afterwards,
    /// since the canonical node order depends on label ids.
    ///
    /// # Panics
    ///
    /// Panics if any node's label is not covered by `map`.
    pub fn relabel(&mut self, map: &[LabelId]) {
        for label in &mut self.labels {
            *label = map[label.index()];
        }
    }

    /// All node ids, in storage order.
    pub fn nodes(&self) -> impl Iterator<Item = TwigNodeId> {
        0..self.labels.len() as u32
    }

    /// Node ids in pre-order, children visited in insertion order.
    pub fn pre_order(&self) -> Vec<TwigNodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes with no children.
    pub fn leaves(&self) -> Vec<TwigNodeId> {
        self.nodes()
            .filter(|&n| self.children(n).is_empty())
            .collect()
    }

    /// Nodes eligible for removal in the recursive decomposition: all leaf
    /// nodes, plus the root when it has degree 1 (the paper treats a
    /// degree-1 root as a leaf for decomposition purposes). For any twig of
    /// size ≥ 2 this set has at least two elements.
    pub fn removable_nodes(&self) -> Vec<TwigNodeId> {
        let mut r = self.leaves();
        if self.len() >= 2 && self.children(self.root()).len() == 1 {
            r.push(self.root());
        }
        r
    }

    /// Whether `n` may be removed while keeping the remainder a rooted tree.
    pub fn is_removable(&self, n: TwigNodeId) -> bool {
        if self.children(n).is_empty() {
            self.len() >= 2 || n != self.root()
        } else {
            n == self.root() && self.children(n).len() == 1
        }
    }

    /// Returns a new twig with node `n` removed, re-normalized to pre-order.
    ///
    /// # Panics
    ///
    /// Panics if removing `n` would disconnect the twig (see
    /// [`Twig::is_removable`]) or leave it empty.
    pub fn remove_node(&self, n: TwigNodeId) -> Twig {
        assert!(self.len() >= 2, "cannot remove the last node");
        assert!(self.is_removable(n), "node {n} is not removable");
        let keep: Vec<TwigNodeId> = self.nodes().filter(|&m| m != n).collect();
        self.subtwig(&keep)
    }

    /// [`Twig::remove_node`] into a caller-provided twig, reusing its
    /// buffers. Because a removable node is a leaf or a degree-1 root, the
    /// remainder can be rebuilt by a direct pre-order walk that skips `n`,
    /// with none of [`Twig::subtwig`]'s scratch allocations — this is the
    /// hot path of Apriori candidate pruning in the miner.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Twig::remove_node`].
    pub fn remove_node_into(&self, n: TwigNodeId, out: &mut Twig) {
        assert!(self.len() >= 2, "cannot remove the last node");
        assert!(self.is_removable(n), "node {n} is not removable");
        let root = if n == self.root() {
            self.children(self.root())[0]
        } else {
            self.root()
        };
        out.reset(self.label(root));
        // Pre-order DFS skipping `n`; stack holds (old node, new parent).
        let mut stack: Vec<(TwigNodeId, u32)> = Vec::with_capacity(self.len());
        for &c in self.children(root).iter().rev() {
            if c != n {
                stack.push((c, 0));
            }
        }
        while let Some((m, p)) = stack.pop() {
            let id = out.add_child(p, self.label(m));
            for &c in self.children(m).iter().rev() {
                if c != n {
                    stack.push((c, id));
                }
            }
        }
    }

    /// Extracts the sub-twig induced by `nodes`, which must be connected and
    /// contain exactly one node whose parent is outside the set (the new
    /// root). Node order in the result is pre-order.
    ///
    /// # Panics
    ///
    /// Panics if the induced set is empty or not a tree.
    pub fn subtwig(&self, nodes: &[TwigNodeId]) -> Twig {
        assert!(!nodes.is_empty(), "empty node set");
        let in_set: Vec<bool> = {
            let mut v = vec![false; self.len()];
            for &n in nodes {
                v[n as usize] = true;
            }
            v
        };
        // The new root is the unique node whose parent is absent.
        let mut roots = nodes.iter().copied().filter(|&n| match self.parent(n) {
            None => true,
            Some(p) => !in_set[p as usize],
        });
        let root = roots.next().expect("node set has no root");
        assert!(
            roots.next().is_none(),
            "node set is not connected (two roots)"
        );

        let mut out = Twig::single(self.label(root));
        let mut map = vec![u32::MAX; self.len()];
        map[root as usize] = 0;
        // Pre-order DFS restricted to the kept set.
        let mut stack: Vec<TwigNodeId> = self
            .children(root)
            .iter()
            .rev()
            .copied()
            .filter(|&c| in_set[c as usize])
            .collect();
        let mut visited = 1usize;
        while let Some(n) = stack.pop() {
            let p = self.parent(n).expect("non-root has a parent");
            let new_parent = map[p as usize];
            assert!(new_parent != u32::MAX, "node set is not connected");
            let id = out.add_child(new_parent, self.label(n));
            map[n as usize] = id;
            visited += 1;
            for &c in self.children(n).iter().rev() {
                if in_set[c as usize] {
                    stack.push(c);
                }
            }
        }
        assert_eq!(visited, nodes.len(), "node set is not connected");
        out
    }

    /// Re-normalizes storage to pre-order (children keep insertion order).
    /// Derived twigs from this crate are already normalized; this is useful
    /// after manual construction.
    pub fn normalized(&self) -> Twig {
        let all: Vec<TwigNodeId> = self.nodes().collect();
        self.subtwig(&all)
    }

    /// Whether the twig is a simple path (every node has at most one child).
    pub fn is_path(&self) -> bool {
        self.nodes().all(|n| self.children(n).len() <= 1)
    }

    /// For a path twig, the labels from root to leaf; `None` otherwise.
    pub fn path_labels(&self) -> Option<Vec<LabelId>> {
        if !self.is_path() {
            return None;
        }
        let mut labels = Vec::with_capacity(self.len());
        let mut cur = self.root();
        loop {
            labels.push(self.label(cur));
            match self.children(cur).first() {
                Some(&c) => cur = c,
                None => break,
            }
        }
        Some(labels)
    }

    /// Builds a path twig from a root-to-leaf label sequence.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn path(labels: &[LabelId]) -> Twig {
        assert!(!labels.is_empty(), "empty path");
        let mut t = Twig::single(labels[0]);
        let mut cur = t.root();
        for &l in &labels[1..] {
            cur = t.add_child(cur, l);
        }
        t
    }

    /// Degree (number of children, plus one for the parent edge if any).
    pub fn degree(&self, n: TwigNodeId) -> usize {
        self.children(n).len() + usize::from(self.parent(n).is_some())
    }

    /// Renders the twig in the query surface syntax, e.g. `a[b[c]][c]`.
    /// Children are emitted in stored order; use
    /// [`canonical::canonicalize`](crate::canonical::canonicalize) first for
    /// a deterministic form.
    pub fn to_query_string(&self, labels: &LabelInterner) -> String {
        fn rec(t: &Twig, n: TwigNodeId, labels: &LabelInterner, out: &mut String) {
            out.push_str(labels.resolve(t.label(n)));
            for &c in t.children(n) {
                out.push('[');
                rec(t, c, labels, out);
                out.push(']');
            }
        }
        let mut s = String::new();
        rec(self, self.root(), labels, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interner() -> (LabelInterner, Vec<LabelId>) {
        let mut it = LabelInterner::new();
        let ids = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| it.intern(s))
            .collect();
        (it, ids)
    }

    #[test]
    fn relabel_translates_labels_and_keeps_structure() {
        let (_, ids) = interner();
        let mut t = Twig::single(ids[0]);
        let b = t.add_child(t.root(), ids[1]);
        t.add_child(b, ids[2]);
        // Shift every label by one: a->b, b->c, c->d, d->e, e->a.
        let map = [ids[1], ids[2], ids[3], ids[4], ids[0]];
        let before_parents: Vec<_> = t.nodes().map(|n| t.parent(n)).collect();
        t.relabel(&map);
        assert_eq!(t.label(t.root()), ids[1]);
        assert_eq!(t.label(b), ids[2]);
        let after_parents: Vec<_> = t.nodes().map(|n| t.parent(n)).collect();
        assert_eq!(before_parents, after_parents, "structure untouched");
    }

    #[test]
    fn pop_leaf_inverts_add_child() {
        let (_, ids) = interner();
        let mut t = Twig::single(ids[0]);
        let b = t.add_child(t.root(), ids[1]);
        let snapshot = t.clone();
        let c = t.add_child(b, ids[2]);
        t.pop_leaf(c);
        assert_eq!(t.len(), snapshot.len());
        assert_eq!(t.children(b), snapshot.children(b));
        assert_eq!(t.children(t.root()), snapshot.children(snapshot.root()));
    }

    /// a[b[d]][c] — 4 nodes.
    fn sample() -> (Twig, LabelInterner) {
        let (it, l) = interner();
        let mut t = Twig::single(l[0]);
        let b = t.add_child(t.root(), l[1]);
        t.add_child(t.root(), l[2]);
        t.add_child(b, l[3]);
        (t, it)
    }

    #[test]
    fn construction_and_links() {
        let (t, _) = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(t.root()), None);
        let b = t.children(t.root())[0];
        assert_eq!(t.parent(b), Some(t.root()));
        assert_eq!(t.children(b).len(), 1);
    }

    #[test]
    fn preorder_visits_all_nodes_parent_first() {
        let (t, _) = sample();
        let order = t.pre_order();
        assert_eq!(order.len(), t.len());
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in t.nodes() {
            if let Some(p) = t.parent(n) {
                assert!(pos[&p] < pos[&n]);
            }
        }
    }

    #[test]
    fn leaves_and_removable() {
        let (t, _) = sample();
        // Leaves: d (under b) and c.
        assert_eq!(t.leaves().len(), 2);
        // Root has degree 2 -> not removable; so removable == leaves.
        assert_eq!(t.removable_nodes().len(), 2);
    }

    #[test]
    fn degree_one_root_is_removable() {
        let (_, l) = interner();
        let t = Twig::path(&[l[0], l[1], l[2]]);
        let removable = t.removable_nodes();
        assert_eq!(removable.len(), 2);
        assert!(removable.contains(&t.root()));
    }

    #[test]
    fn remove_leaf_keeps_tree() {
        let (t, it) = sample();
        let leaf = *t.leaves().last().unwrap();
        let t2 = t.remove_node(leaf);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.parent(t2.root()), None);
        // Removing `c` leaves a[b[d]]; removing `d` leaves a[b][c].
        let s = t2.to_query_string(&it);
        assert!(s == "a[b[d]]" || s == "a[b][c]", "unexpected {s}");
    }

    #[test]
    fn remove_degree_one_root_promotes_child() {
        let (_, l) = interner();
        let t = Twig::path(&[l[0], l[1], l[2]]);
        let t2 = t.remove_node(t.root());
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.path_labels().unwrap(), vec![l[1], l[2]]);
    }

    #[test]
    #[should_panic(expected = "not removable")]
    fn removing_internal_node_panics() {
        let (t, _) = sample();
        let b = t.children(t.root())[0]; // internal node with child d
        let _ = t.remove_node(b);
    }

    #[test]
    fn subtwig_extraction() {
        let (t, it) = sample();
        let b = t.children(t.root())[0];
        let d = t.children(b)[0];
        let sub = t.subtwig(&[b, d]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.to_query_string(&it), "b[d]");
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_subtwig_panics() {
        let (t, _) = sample();
        let b = t.children(t.root())[0];
        let d = t.children(b)[0];
        let c = t.children(t.root())[1];
        let _ = t.subtwig(&[d, c]); // d and c are not connected without a/b
    }

    #[test]
    fn path_round_trip() {
        let (_, l) = interner();
        let t = Twig::path(&[l[0], l[1], l[1], l[2]]);
        assert!(t.is_path());
        assert_eq!(t.path_labels().unwrap(), vec![l[0], l[1], l[1], l[2]]);
        let (t2, _) = sample();
        assert!(!t2.is_path());
        assert_eq!(t2.path_labels(), None);
    }

    #[test]
    fn query_string_rendering() {
        let (t, it) = sample();
        assert_eq!(t.to_query_string(&it), "a[b[d]][c]");
    }

    #[test]
    fn reset_clears_to_single_root() {
        let (mut t, _) = sample();
        let label = t.label(1);
        t.reset(label);
        assert_eq!(t.len(), 1);
        assert_eq!(t.label(t.root()), label);
        assert_eq!(t.parent(t.root()), None);
        assert!(t.children(t.root()).is_empty());
        // The reset twig is fully usable for fresh construction.
        t.add_child(t.root(), label);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_node_into_matches_remove_node() {
        let (t, _) = sample();
        let mut scratch = Twig::single(t.label(t.root()));
        // Pollute the scratch so stale state would be caught.
        scratch.add_child(scratch.root(), t.label(1));
        for n in t.removable_nodes() {
            t.remove_node_into(n, &mut scratch);
            assert_eq!(scratch, t.remove_node(n), "removing node {n}");
        }
    }

    #[test]
    fn normalized_is_stable() {
        let (t, _) = sample();
        let n1 = t.normalized();
        let n2 = n1.normalized();
        assert_eq!(n1, n2);
    }
}
