//! # tl-workload — query workloads and error metrics (paper §5.1)
//!
//! * [`positive_workload`] — distinct twig patterns of a given size that
//!   *occur* in a document, sampled by random connected-subtree extraction,
//!   each labeled with its exact selectivity. (The paper enumerates all
//!   patterns per level and samples when a level is too large; extraction
//!   sampling reaches the same population — occurred patterns of size n —
//!   without enumerating levels the summary never stores.)
//! * [`enumerated_workload`] — the paper's literal construction: mine the
//!   level, then sample uniformly without replacement.
//! * [`negative_workload`] — zero-selectivity queries built by replacing
//!   labels of positive queries with labels drawn according to their
//!   document frequency ("more frequent labels are used for replacement
//!   more often"), filtered to true selectivity 0.
//! * [`metrics`] — the absolute relative error with the paper's sanity
//!   bound: `|s − ŝ| / max(s, b)` where `b` is the 10th percentile of true
//!   counts, floored at 10.

pub mod metrics;
pub mod sample;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tl_twig::{MatchCounter, Twig};
use tl_xml::{DocIndex, Document};

pub use metrics::{
    average_relative_error_pct, error_cdf, max_q_error, q_error, relative_error_pct, sanity_bound,
};
pub use sample::extract_pattern;

/// One benchmark query with its ground-truth selectivity.
#[derive(Clone, Debug)]
pub struct QueryCase {
    /// The twig query (canonical form).
    pub twig: Twig,
    /// Its exact selectivity in the source document.
    pub true_count: u64,
}

/// A per-query-size workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Query size (node count) of every case.
    pub size: usize,
    /// The labeled queries.
    pub cases: Vec<QueryCase>,
}

impl Workload {
    /// True counts of all cases, in order.
    pub fn true_counts(&self) -> Vec<u64> {
        self.cases.iter().map(|c| c.true_count).collect()
    }
}

/// Samples up to `n` *distinct* occurred patterns of `size` nodes.
///
/// Returns fewer than `n` cases when the document does not contain enough
/// distinct patterns of that size (attempts are bounded).
pub fn positive_workload(doc: &Document, size: usize, n: usize, seed: u64) -> Workload {
    positive_workload_with_index(doc, &DocIndex::new(doc), size, n, seed)
}

/// [`positive_workload_with_index`], reporting generation time and query
/// count to `rec` (`workload.generate` span, `workload.queries` counter).
pub fn positive_workload_observed(
    doc: &Document,
    index: &DocIndex,
    size: usize,
    n: usize,
    seed: u64,
    rec: &dyn tl_obs::Recorder,
) -> Workload {
    let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_WORKLOAD);
    let workload = positive_workload_with_index(doc, index, size, n, seed);
    rec.add(tl_obs::names::WORKLOAD_QUERIES, workload.cases.len() as u64);
    workload
}

/// [`positive_workload`] over a pre-built document index (the ground-truth
/// labeling reuses it instead of re-indexing the document).
pub fn positive_workload_with_index(
    doc: &Document,
    index: &DocIndex,
    size: usize,
    n: usize,
    seed: u64,
) -> Workload {
    assert!(size >= 1, "query size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let counter = MatchCounter::with_index(doc, index);
    let mut seen = tl_xml::FxHashSet::default();
    let mut cases = Vec::with_capacity(n);
    let max_attempts = n.saturating_mul(60).max(512);
    for _ in 0..max_attempts {
        if cases.len() >= n {
            break;
        }
        let Some(twig) = sample::random_occurred_twig(doc, &mut rng, size) else {
            continue;
        };
        let key = tl_twig::canonical::key_of(&twig);
        if !seen.insert(key.clone()) {
            continue;
        }
        let true_count = counter.count(&twig);
        debug_assert!(true_count >= 1, "extracted patterns occur by construction");
        cases.push(QueryCase {
            twig: key.decode(),
            true_count,
        });
    }
    Workload { size, cases }
}

/// The paper's own workload construction (§5.1): *enumerate* all occurred
/// patterns of `size` nodes (by mining level `size`) and sample `n` of them
/// uniformly. Exact but only practical for sizes where the level fits in
/// memory; [`positive_workload`] extraction-samples the same population
/// without enumerating it and is preferred for large sizes.
pub fn enumerated_workload(doc: &Document, size: usize, n: usize, seed: u64) -> Workload {
    assert!(size >= 1, "query size must be positive");
    let report = tl_miner::mine(
        doc,
        tl_miner::MineConfig {
            max_size: size,
            threads: 0,
        },
    );
    let mut all: Vec<(tl_twig::TwigKey, u64)> = report
        .lattice
        .iter_level(size)
        .map(|(k, c)| (k.clone(), c))
        .collect();
    all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D);
    // Uniform sample without replacement (partial Fisher-Yates).
    let take = n.min(all.len());
    for i in 0..take {
        let j = i + (rand::Rng::gen_range(&mut rng, 0..(all.len() - i)));
        all.swap(i, j);
    }
    let cases = all
        .into_iter()
        .take(take)
        .map(|(key, true_count)| QueryCase {
            twig: key.decode(),
            true_count,
        })
        .collect();
    Workload { size, cases }
}

/// Builds up to `n` zero-selectivity queries of `size` nodes by label
/// perturbation of occurred patterns.
pub fn negative_workload(doc: &Document, size: usize, n: usize, seed: u64) -> Workload {
    negative_workload_with_index(doc, &DocIndex::new(doc), size, n, seed)
}

/// [`negative_workload`] over a pre-built document index.
pub fn negative_workload_with_index(
    doc: &Document,
    index: &DocIndex,
    size: usize,
    n: usize,
    seed: u64,
) -> Workload {
    assert!(size >= 1, "query size must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let counter = MatchCounter::with_index(doc, index);
    let weights = sample::label_weights(doc);
    let mut seen = tl_xml::FxHashSet::default();
    let mut cases = Vec::with_capacity(n);
    let max_attempts = n.saturating_mul(120).max(1024);
    for _ in 0..max_attempts {
        if cases.len() >= n {
            break;
        }
        let Some(base) = sample::random_occurred_twig(doc, &mut rng, size) else {
            continue;
        };
        let twig = sample::perturb_labels(&base, &weights, &mut rng);
        let key = tl_twig::canonical::key_of(&twig);
        if seen.contains(&key) {
            continue;
        }
        if counter.count(&twig) != 0 {
            continue;
        }
        seen.insert(key.clone());
        cases.push(QueryCase {
            twig: key.decode(),
            true_count: 0,
        });
    }
    Workload { size, cases }
}

#[cfg(test)]
mod tests {
    use tl_datagen::{Dataset, GenConfig};
    use tl_twig::count_matches;

    use super::*;

    fn sample_doc() -> Document {
        Dataset::Psd.generate(GenConfig {
            seed: 77,
            target_elements: 4_000,
        })
    }

    #[test]
    fn positive_cases_occur_and_are_distinct() {
        let doc = sample_doc();
        for size in [3usize, 5, 7] {
            let w = positive_workload(&doc, size, 30, 1);
            assert!(
                w.cases.len() >= 10,
                "size {size}: only {} cases",
                w.cases.len()
            );
            let mut keys = tl_xml::FxHashSet::default();
            for case in &w.cases {
                assert_eq!(case.twig.len(), size);
                assert!(case.true_count >= 1);
                assert_eq!(count_matches(&doc, &case.twig), case.true_count);
                assert!(keys.insert(tl_twig::canonical::key_of(&case.twig)));
            }
        }
    }

    #[test]
    fn positive_workload_is_deterministic() {
        let doc = sample_doc();
        let w1 = positive_workload(&doc, 5, 20, 9);
        let w2 = positive_workload(&doc, 5, 20, 9);
        assert_eq!(w1.cases.len(), w2.cases.len());
        for (a, b) in w1.cases.iter().zip(&w2.cases) {
            assert_eq!(
                tl_twig::canonical::key_of(&a.twig),
                tl_twig::canonical::key_of(&b.twig)
            );
        }
    }

    #[test]
    fn different_seeds_give_different_workloads() {
        let doc = sample_doc();
        let w1 = positive_workload(&doc, 5, 20, 1);
        let w2 = positive_workload(&doc, 5, 20, 2);
        let k1: Vec<_> = w1
            .cases
            .iter()
            .map(|c| tl_twig::canonical::key_of(&c.twig))
            .collect();
        let k2: Vec<_> = w2
            .cases
            .iter()
            .map(|c| tl_twig::canonical::key_of(&c.twig))
            .collect();
        assert_ne!(k1, k2);
    }

    #[test]
    fn enumerated_workload_is_exhaustive_and_exact() {
        let doc = sample_doc();
        let w = enumerated_workload(&doc, 3, 10_000, 7);
        // Sampling more than the level holds returns the whole level.
        let mined = tl_miner::mine(
            &doc,
            tl_miner::MineConfig {
                max_size: 3,
                threads: 1,
            },
        );
        assert_eq!(w.cases.len(), mined.lattice.patterns_at(3));
        for case in &w.cases {
            assert_eq!(count_matches(&doc, &case.twig), case.true_count);
        }
    }

    #[test]
    fn enumerated_workload_samples_deterministically() {
        let doc = sample_doc();
        let w1 = enumerated_workload(&doc, 4, 12, 3);
        let w2 = enumerated_workload(&doc, 4, 12, 3);
        assert_eq!(w1.cases.len(), 12);
        for (a, b) in w1.cases.iter().zip(&w2.cases) {
            assert_eq!(
                tl_twig::canonical::key_of(&a.twig),
                tl_twig::canonical::key_of(&b.twig)
            );
        }
        let w3 = enumerated_workload(&doc, 4, 12, 4);
        let k1: Vec<_> = w1
            .cases
            .iter()
            .map(|c| tl_twig::canonical::key_of(&c.twig))
            .collect();
        let k3: Vec<_> = w3
            .cases
            .iter()
            .map(|c| tl_twig::canonical::key_of(&c.twig))
            .collect();
        assert_ne!(k1, k3, "different seeds sample differently");
    }

    #[test]
    fn extraction_sampling_reaches_the_enumerated_population() {
        // Every extraction-sampled pattern is in the enumerated level.
        let doc = sample_doc();
        let enumerated: std::collections::HashSet<_> = enumerated_workload(&doc, 3, 100_000, 1)
            .cases
            .iter()
            .map(|c| tl_twig::canonical::key_of(&c.twig))
            .collect();
        let sampled = positive_workload(&doc, 3, 25, 2);
        for case in &sampled.cases {
            assert!(enumerated.contains(&tl_twig::canonical::key_of(&case.twig)));
        }
    }

    #[test]
    fn negative_cases_have_zero_selectivity() {
        let doc = sample_doc();
        let w = negative_workload(&doc, 4, 20, 3);
        assert!(!w.cases.is_empty());
        for case in &w.cases {
            assert_eq!(case.true_count, 0);
            assert_eq!(count_matches(&doc, &case.twig), 0);
            assert_eq!(case.twig.len(), 4);
            // Perturbed labels still come from the document's alphabet.
            for n in case.twig.nodes() {
                assert!(case.twig.label(n).index() < doc.labels().len());
            }
        }
    }

    #[test]
    fn workload_true_counts_accessor() {
        let doc = sample_doc();
        let w = positive_workload(&doc, 3, 5, 4);
        assert_eq!(w.true_counts().len(), w.cases.len());
    }

    #[test]
    fn size_one_workload() {
        let doc = sample_doc();
        let w = positive_workload(&doc, 1, 10, 5);
        assert!(!w.cases.is_empty());
        for c in &w.cases {
            assert_eq!(c.twig.len(), 1);
        }
    }
}
