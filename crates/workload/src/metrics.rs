//! The paper's error metric (§5.1) and distribution summaries.
//!
//! Accuracy is quantified as `|s − ŝ| / max(s, b)` where the *sanity bound*
//! `b` is the 10th percentile of the workload's true counts, floored at 10,
//! "to avoid the artificially high percentages of low count queries".
//! Errors are reported in percent, matching Figures 7, 8 and 10.

/// The sanity bound: 10th percentile of `true_counts`, floored at 10.
pub fn sanity_bound(true_counts: &[u64]) -> f64 {
    if true_counts.is_empty() {
        return 10.0;
    }
    let mut sorted: Vec<u64> = true_counts.to_vec();
    sorted.sort_unstable();
    let idx = (sorted.len() - 1) / 10;
    (sorted[idx] as f64).max(10.0)
}

/// Absolute relative error in percent: `100 · |s − ŝ| / max(s, bound)`.
pub fn relative_error_pct(true_count: u64, estimate: f64, bound: f64) -> f64 {
    debug_assert!(bound > 0.0);
    100.0 * (true_count as f64 - estimate).abs() / (true_count as f64).max(bound)
}

/// Average relative error (percent) over paired truths and estimates.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn average_relative_error_pct(true_counts: &[u64], estimates: &[f64]) -> f64 {
    assert_eq!(true_counts.len(), estimates.len(), "length mismatch");
    if true_counts.is_empty() {
        return 0.0;
    }
    let bound = sanity_bound(true_counts);
    let sum: f64 = true_counts
        .iter()
        .zip(estimates)
        .map(|(&s, &est)| relative_error_pct(s, est, bound))
        .sum();
    sum / true_counts.len() as f64
}

/// The q-error of one estimate: `max(t', e') / min(t', e')` where both the
/// truth and the estimate are floored at 1.0 (Moerkotte et al.'s convention,
/// also used by the Bayesian-network selectivity gates this repo's golden
/// gates follow). Always ≥ 1; 1.0 means exact (up to the floor).
pub fn q_error(true_count: u64, estimate: f64) -> f64 {
    let t = (true_count as f64).max(1.0);
    let e = estimate.max(1.0);
    t.max(e) / t.min(e)
}

/// The largest q-error over paired truths and estimates (1.0 when empty).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_q_error(true_counts: &[u64], estimates: &[f64]) -> f64 {
    assert_eq!(true_counts.len(), estimates.len(), "length mismatch");
    true_counts
        .iter()
        .zip(estimates)
        .map(|(&t, &e)| q_error(t, e))
        .fold(1.0, f64::max)
}

/// Cumulative distribution of errors: for each grid point `x` (percent),
/// the fraction (percent) of errors ≤ `x`. Matches the Figure 8 axes.
pub fn error_cdf(errors: &[f64], grid: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = errors.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let n = sorted.len().max(1) as f64;
    grid.iter()
        .map(|&x| {
            let le = sorted.partition_point(|&e| e <= x);
            (x, 100.0 * le as f64 / n)
        })
        .collect()
}

/// The log-spaced grid used for Figure 8 (0.1% to 10000%).
pub fn fig8_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut x = 0.1f64;
    while x <= 10_000.0 * (1.0 + 1e-9) {
        grid.push(x);
        x *= 10f64.powf(0.25);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanity_bound_floor() {
        assert_eq!(sanity_bound(&[1, 2, 3]), 10.0);
        assert_eq!(sanity_bound(&[]), 10.0);
    }

    #[test]
    fn sanity_bound_percentile() {
        // 20 values 100..=2000 step 100: 10th percentile index (19)/10 = 1
        // => value 200.
        let counts: Vec<u64> = (1..=20).map(|i| i * 100).collect();
        assert_eq!(sanity_bound(&counts), 200.0);
    }

    #[test]
    fn relative_error_uses_bound_for_small_counts() {
        // true = 2, est = 12, bound = 10: |2-12|/10 = 100%.
        assert!((relative_error_pct(2, 12.0, 10.0) - 100.0).abs() < 1e-12);
        // Large counts ignore the bound.
        assert!((relative_error_pct(1000, 500.0, 10.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn exact_estimates_have_zero_error() {
        assert_eq!(relative_error_pct(42, 42.0, 10.0), 0.0);
        assert_eq!(average_relative_error_pct(&[5, 50], &[5.0, 50.0]), 0.0);
    }

    #[test]
    fn average_mixes_cases() {
        // bound = max(10th pct, 10) = 10; errors: |100-50|/100 = 50%,
        // |20-20|/20 = 0%.
        let avg = average_relative_error_pct(&[100, 20], &[50.0, 20.0]);
        assert!((avg - 25.0).abs() < 1e-12);
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        // Over- and under-estimation by the same factor score the same.
        assert_eq!(q_error(10, 20.0), q_error(40, 20.0));
        // Both sides floored at 1: a zero estimate of a zero truth is exact.
        assert_eq!(q_error(0, 0.0), 1.0);
        assert_eq!(q_error(0, 0.5), 1.0);
        // A zero estimate of truth 8 scores 8.
        assert_eq!(q_error(8, 0.0), 8.0);
        assert_eq!(max_q_error(&[], &[]), 1.0);
        assert_eq!(max_q_error(&[10, 8], &[20.0, 8.0]), 2.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let errors = vec![0.5, 5.0, 50.0, 500.0, 5000.0];
        let grid = fig8_grid();
        let cdf = error_cdf(&errors, &grid);
        let mut prev = 0.0;
        for &(_, frac) in &cdf {
            assert!(frac >= prev && frac <= 100.0);
            prev = frac;
        }
        assert_eq!(cdf.last().unwrap().1, 100.0);
    }

    #[test]
    fn cdf_counts_at_thresholds() {
        let errors = vec![1.0, 10.0, 100.0];
        let cdf = error_cdf(&errors, &[1.0, 10.0, 99.0, 1000.0]);
        assert_eq!(cdf[0].1, 100.0 / 3.0);
        assert_eq!(cdf[1].1, 200.0 / 3.0);
        assert_eq!(cdf[2].1, 200.0 / 3.0);
        assert_eq!(cdf[3].1, 100.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = average_relative_error_pct(&[1], &[1.0, 2.0]);
    }
}
