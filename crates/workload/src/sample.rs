//! Random connected-subtree extraction and label perturbation.

use rand::rngs::StdRng;
use rand::Rng;
use tl_twig::Twig;
use tl_xml::{Document, LabelId, NodeId};

/// Extracts the twig pattern induced by a connected set of document nodes.
///
/// # Panics
///
/// Panics if `nodes` is empty or not connected (more than one node whose
/// parent lies outside the set).
pub fn extract_pattern(doc: &Document, nodes: &[NodeId]) -> Twig {
    assert!(!nodes.is_empty(), "empty node set");
    let set: tl_xml::FxHashSet<u32> = nodes.iter().map(|n| n.0).collect();
    let mut roots = nodes.iter().copied().filter(|&n| match doc.parent(n) {
        None => true,
        Some(p) => !set.contains(&p.0),
    });
    let root = roots.next().expect("node set has a root");
    assert!(roots.next().is_none(), "node set is not connected");

    let mut twig = Twig::single(doc.label(root));
    let mut stack: Vec<(NodeId, u32)> = doc
        .children(root)
        .filter(|c| set.contains(&c.0))
        .map(|c| (c, 0u32))
        .collect();
    let mut placed = 1usize;
    while let Some((v, parent_in_twig)) = stack.pop() {
        let id = twig.add_child(parent_in_twig, doc.label(v));
        placed += 1;
        for c in doc.children(v) {
            if set.contains(&c.0) {
                stack.push((c, id));
            }
        }
    }
    assert_eq!(placed, nodes.len(), "node set is not connected");
    twig
}

/// Draws a random connected node set of `size` nodes and returns its
/// pattern; `None` when the random walk gets stuck (e.g. the component
/// around the start node is smaller than `size`).
pub fn random_occurred_twig(doc: &Document, rng: &mut StdRng, size: usize) -> Option<Twig> {
    if size == 0 || size > doc.len() {
        return None;
    }
    let start = NodeId(rng.gen_range(0..doc.len() as u32));
    let mut selected: Vec<NodeId> = vec![start];
    let mut in_set = tl_xml::FxHashSet::default();
    in_set.insert(start.0);
    let mut root = start;
    // Frontier: children of selected nodes not yet selected, plus the
    // current root's parent (growing upward re-roots the pattern).
    let mut frontier: Vec<NodeId> = doc.children(start).collect();
    while selected.len() < size {
        let mut options = frontier.len();
        let parent = doc.parent(root).filter(|p| !in_set.contains(&p.0));
        if parent.is_some() {
            options += 1;
        }
        if options == 0 {
            return None;
        }
        let pick = rng.gen_range(0..options);
        let chosen = if pick < frontier.len() {
            frontier.swap_remove(pick)
        } else {
            let p = parent.expect("pick beyond frontier implies parent");
            root = p;
            p
        };
        if !in_set.insert(chosen.0) {
            continue;
        }
        selected.push(chosen);
        for c in doc.children(chosen) {
            if !in_set.contains(&c.0) {
                frontier.push(c);
            }
        }
    }
    Some(extract_pattern(doc, &selected))
}

/// Cumulative label frequencies for frequency-weighted sampling.
pub struct LabelWeights {
    cumulative: Vec<u64>,
    total: u64,
}

/// Computes document label frequencies (the paper replaces labels with
/// probability proportional to their frequency, maximizing the chance of
/// plausible-but-impossible queries).
pub fn label_weights(doc: &Document) -> LabelWeights {
    let mut counts = vec![0u64; doc.labels().len()];
    for v in doc.pre_order() {
        counts[doc.label(v).index()] += 1;
    }
    let mut cumulative = Vec::with_capacity(counts.len());
    let mut running = 0u64;
    for c in counts {
        running += c;
        cumulative.push(running);
    }
    LabelWeights {
        cumulative,
        total: running,
    }
}

impl LabelWeights {
    /// Draws a label proportionally to its document frequency.
    pub fn sample(&self, rng: &mut StdRng) -> LabelId {
        debug_assert!(self.total > 0);
        let x = rng.gen_range(0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        LabelId(idx as u32)
    }
}

/// Replaces one or two random node labels of `twig` with frequency-weighted
/// draws.
pub fn perturb_labels(twig: &Twig, weights: &LabelWeights, rng: &mut StdRng) -> Twig {
    let mut out = twig.clone();
    let replacements = if twig.len() > 2 && rng.gen_bool(0.4) {
        2
    } else {
        1
    };
    // Rebuild with substituted labels (Twig has no label setter by design:
    // derived twigs stay normalized).
    let mut labels: Vec<LabelId> = out.nodes().map(|n| out.label(n)).collect();
    for _ in 0..replacements {
        let n = rng.gen_range(0..labels.len());
        labels[n] = weights.sample(rng);
    }
    out = rebuild_with_labels(twig, &labels);
    out
}

/// Copies `twig`'s shape with new per-node labels.
fn rebuild_with_labels(twig: &Twig, labels: &[LabelId]) -> Twig {
    let mut out = Twig::single(labels[twig.root() as usize]);
    let mut map = vec![u32::MAX; twig.len()];
    map[twig.root() as usize] = out.root();
    for n in twig.pre_order() {
        if n == twig.root() {
            continue;
        }
        let p = twig.parent(n).expect("non-root has parent");
        let id = out.add_child(map[p as usize], labels[n as usize]);
        map[n as usize] = id;
    }
    out
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn extract_pattern_simple() {
        let d = doc("<a><b><c/></b><d/></a>");
        // Nodes: a=0, b=1, c=2, d=3. Extract {b, c}.
        let t = extract_pattern(&d, &[NodeId(1), NodeId(2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(d.labels().resolve(t.label(t.root())), "b");
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn extract_pattern_rejects_disconnected() {
        let d = doc("<a><b><c/></b><d/></a>");
        let _ = extract_pattern(&d, &[NodeId(2), NodeId(3)]);
    }

    #[test]
    fn random_twig_has_requested_size_and_occurs() {
        let d = doc("<a><b><c/><c/></b><b><c/></b><d/></a>");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            if let Some(t) = random_occurred_twig(&d, &mut rng, 3) {
                assert_eq!(t.len(), 3);
                assert!(tl_twig::count_matches(&d, &t) >= 1);
            }
        }
    }

    #[test]
    fn random_twig_too_large_returns_none() {
        let d = doc("<a><b/></a>");
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_occurred_twig(&d, &mut rng, 10).is_none());
    }

    #[test]
    fn label_weights_prefer_frequent_labels() {
        let d = doc("<a><b/><b/><b/><b/><b/><b/><b/><b/><c/></a>");
        let w = label_weights(&d);
        let mut rng = StdRng::seed_from_u64(2);
        let b = d.labels().get("b").unwrap();
        let hits = (0..1000).filter(|_| w.sample(&mut rng) == b).count();
        assert!(hits > 600, "b drawn {hits}/1000 times");
    }

    #[test]
    fn perturb_keeps_shape() {
        let d = doc("<a><b><c/></b><d/></a>");
        let mut rng = StdRng::seed_from_u64(3);
        let base = extract_pattern(&d, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let w = label_weights(&d);
        let p = perturb_labels(&base, &w, &mut rng);
        assert_eq!(p.len(), base.len());
        // Shape identical: same parent structure.
        for n in base.nodes() {
            assert_eq!(base.parent(n), p.parent(n));
        }
    }
}
