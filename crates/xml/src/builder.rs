//! Incremental document construction.
//!
//! [`DocumentBuilder`] receives `begin`/`end` events (as a SAX-style parser
//! or a generator produces them) and assembles the arena tree. Nodes are
//! allocated in the order `begin` is called, which is exactly pre-order —
//! the numbering invariant [`Document::pre_order`] depends on.

use crate::label::{LabelId, LabelInterner};
use crate::tree::{Document, Node, NodeId};

/// Error returned by [`DocumentBuilder::finish`] when the event stream was
/// not a single well-formed tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `finish` called with unclosed elements remaining.
    UnclosedElements(usize),
    /// No `begin` was ever called.
    Empty,
    /// A second root was started after the first tree was closed.
    MultipleRoots,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnclosedElements(n) => write!(f, "{n} unclosed element(s) at finish"),
            BuildError::Empty => write!(f, "no root element"),
            BuildError::MultipleRoots => write!(f, "multiple root elements"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Document`] from nested `begin`/`end` calls.
///
/// # Examples
///
/// ```
/// use tl_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// b.begin("a");
/// b.begin("b");
/// b.end();
/// b.end();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    labels: LabelInterner,
    stack: Vec<u32>,
    /// Last child appended per open element, for O(1) sibling linking.
    last_child: Vec<u32>,
    closed_root: bool,
    multiple_roots: bool,
}

impl DocumentBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that pre-allocates space for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Opens an element with tag `name`; returns its node id.
    pub fn begin(&mut self, name: &str) -> NodeId {
        let label = self.labels.intern(name);
        self.begin_label(label)
    }

    /// Opens an element with an already-interned label.
    ///
    /// The label must come from [`DocumentBuilder::interner_mut`] (or a prior
    /// `begin`) so that it resolves in the finished document.
    pub fn begin_label(&mut self, label: LabelId) -> NodeId {
        if self.stack.is_empty() && self.closed_root {
            self.multiple_roots = true;
        }
        let id = self.nodes.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(NodeId::NONE);
        self.nodes.push(Node {
            label,
            parent,
            first_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
        });
        if parent != NodeId::NONE {
            let prev = self.last_child[self.stack.len() - 1];
            if prev == NodeId::NONE {
                self.nodes[parent as usize].first_child = id;
            } else {
                self.nodes[prev as usize].next_sibling = id;
            }
            self.last_child[self.stack.len() - 1] = id;
        }
        self.stack.push(id);
        self.last_child.push(NodeId::NONE);
        NodeId(id)
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    ///
    /// Panics if no element is open.
    pub fn end(&mut self) {
        self.stack.pop().expect("end() without matching begin()");
        self.last_child.pop();
        if self.stack.is_empty() {
            self.closed_root = true;
        }
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of nodes created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Mutable access to the interner, for pre-interning generator schemas.
    pub fn interner_mut(&mut self) -> &mut LabelInterner {
        &mut self.labels
    }

    /// Finalizes the document.
    pub fn finish(self) -> Result<Document, BuildError> {
        if self.multiple_roots {
            return Err(BuildError::MultipleRoots);
        }
        if !self.stack.is_empty() {
            return Err(BuildError::UnclosedElements(self.stack.len()));
        }
        if self.nodes.is_empty() {
            return Err(BuildError::Empty);
        }
        Ok(Document {
            nodes: self.nodes,
            labels: self.labels,
            root: NodeId(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(
            DocumentBuilder::new().finish().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn unclosed_elements_are_an_error() {
        let mut b = DocumentBuilder::new();
        b.begin("a");
        b.begin("b");
        b.end();
        assert_eq!(b.finish().unwrap_err(), BuildError::UnclosedElements(1));
    }

    #[test]
    fn multiple_roots_are_an_error() {
        let mut b = DocumentBuilder::new();
        b.begin("a");
        b.end();
        b.begin("b");
        b.end();
        assert_eq!(b.finish().unwrap_err(), BuildError::MultipleRoots);
    }

    #[test]
    fn sibling_links_preserve_order() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        for name in ["x", "y", "z"] {
            b.begin(name);
            b.end();
        }
        b.end();
        let d = b.finish().unwrap();
        let kids: Vec<_> = d
            .children(d.root())
            .map(|c| d.label_name(d.label(c)).to_owned())
            .collect();
        assert_eq!(kids, ["x", "y", "z"]);
    }

    #[test]
    fn deep_nesting() {
        let mut b = DocumentBuilder::new();
        for _ in 0..1000 {
            b.begin("d");
        }
        for _ in 0..1000 {
            b.end();
        }
        let d = b.finish().unwrap();
        assert_eq!(d.len(), 1000);
        let deepest = NodeId(999);
        assert_eq!(d.depth(deepest), 999);
    }

    #[test]
    fn begin_label_with_preinterned_schema() {
        let mut b = DocumentBuilder::new();
        let l_root = b.interner_mut().intern("root");
        let l_leaf = b.interner_mut().intern("leaf");
        b.begin_label(l_root);
        b.begin_label(l_leaf);
        b.end();
        b.end();
        let d = b.finish().unwrap();
        assert_eq!(d.label_name(d.label(d.root())), "root");
    }
}
