//! Document editing by rebuild: grafting and pruning subtrees.
//!
//! Arena documents are immutable; updates produce a new arena (an `O(n)`
//! copy, which preserves the pre-order numbering invariant). These
//! operations exist for the incremental summary-maintenance path: they
//! report exactly which labels were *touched*, the information the miner
//! needs to skip recounting unaffected patterns.

use crate::builder::DocumentBuilder;
use crate::label::LabelId;
use crate::tree::{Document, NodeId};

/// Result of a document edit: the new document plus the labels of every
/// node added or removed (a pattern containing none of these labels has
/// the same match count in both documents).
#[derive(Clone, Debug)]
pub struct EditResult {
    /// The edited document (fresh arena, pre-order numbering).
    pub document: Document,
    /// Labels of all added/removed nodes. Label ids are stable across the
    /// edit: the new document's interner extends the old one, so these ids
    /// are valid against both documents.
    pub touched: Vec<LabelId>,
}

/// Returns a copy of `doc` with `record` grafted as the last child of
/// `parent`.
///
/// # Panics
///
/// Panics if `parent` is out of range.
pub fn append_subtree(doc: &Document, parent: NodeId, record: &Document) -> EditResult {
    assert!(parent.index() < doc.len(), "parent out of range");
    let mut b = DocumentBuilder::with_capacity(doc.len() + record.len());
    // Pre-seed the interner so label ids are stable across the edit —
    // callers compare patterns keyed by old ids against the new document.
    *b.interner_mut() = doc.labels().clone();
    let mut touched = Vec::new();
    copy_into(doc, doc.root(), &mut b, &mut |node, builder| {
        if node == parent {
            touched = copy_record(record, builder);
        }
    });
    EditResult {
        document: b.finish().expect("copy of a document is a document"),
        touched: dedup_labels(touched),
    }
}

/// Returns a copy of `doc` with the subtree rooted at `victim` removed.
///
/// # Panics
///
/// Panics if `victim` is the root or out of range.
pub fn remove_subtree(doc: &Document, victim: NodeId) -> EditResult {
    assert!(victim.index() < doc.len(), "victim out of range");
    assert!(victim != doc.root(), "cannot remove the document root");
    // Collect the removed subtree's labels (they survive in the interner,
    // so ids stay valid in the new document).
    let mut touched = Vec::new();
    let mut stack = vec![victim];
    let mut skip = vec![false; doc.len()];
    while let Some(n) = stack.pop() {
        skip[n.index()] = true;
        touched.push(doc.label(n));
        for c in doc.children(n) {
            stack.push(c);
        }
    }
    let mut b = DocumentBuilder::with_capacity(doc.len());
    *b.interner_mut() = doc.labels().clone();
    copy_filtered(doc, doc.root(), &skip, &mut b);
    EditResult {
        document: b.finish().expect("non-root removal keeps a document"),
        touched: dedup_labels(touched),
    }
}

/// Copies `node`'s subtree into `builder`, invoking `hook` after each
/// node's children (before its end event).
fn copy_into(
    doc: &Document,
    node: NodeId,
    builder: &mut DocumentBuilder,
    hook: &mut impl FnMut(NodeId, &mut DocumentBuilder),
) {
    enum Ev {
        Enter(NodeId),
        Exit(NodeId),
    }
    let mut stack = vec![Ev::Enter(node)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n) => {
                builder.begin(doc.label_name(doc.label(n)));
                stack.push(Ev::Exit(n));
                let kids: Vec<NodeId> = doc.children(n).collect();
                for c in kids.into_iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit(n) => {
                hook(n, builder);
                builder.end();
            }
        }
    }
}

/// Copies `record`'s tree into `builder`; returns the labels emitted (as
/// ids of the *builder's* interner).
fn copy_record(record: &Document, builder: &mut DocumentBuilder) -> Vec<LabelId> {
    let mut touched = Vec::new();
    enum Ev {
        Enter(NodeId),
        Exit,
    }
    let mut stack = vec![Ev::Enter(record.root())];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n) => {
                let name = record.label_name(record.label(n));
                let id = builder.interner_mut().intern(name);
                builder.begin_label(id);
                touched.push(id);
                stack.push(Ev::Exit);
                let kids: Vec<NodeId> = record.children(n).collect();
                for c in kids.into_iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit => builder.end(),
        }
    }
    touched
}

/// Copies `node`'s subtree skipping marked nodes (and their descendants).
fn copy_filtered(doc: &Document, node: NodeId, skip: &[bool], builder: &mut DocumentBuilder) {
    enum Ev {
        Enter(NodeId),
        Exit,
    }
    let mut stack = vec![Ev::Enter(node)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n) => {
                if skip[n.index()] {
                    continue;
                }
                builder.begin(doc.label_name(doc.label(n)));
                stack.push(Ev::Exit);
                let kids: Vec<NodeId> = doc.children(n).collect();
                for c in kids.into_iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit => builder.end(),
        }
    }
}

fn dedup_labels(mut labels: Vec<LabelId>) -> Vec<LabelId> {
    labels.sort_unstable();
    labels.dedup();
    labels
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn append_grafts_as_last_child() {
        let base = doc("<a><b/><c/></a>");
        let record = doc("<d><e/></d>");
        let result = append_subtree(&base, base.root(), &record);
        let d = result.document;
        assert_eq!(d.len(), 5);
        let kids: Vec<_> = d
            .children(d.root())
            .map(|c| d.label_name(d.label(c)).to_owned())
            .collect();
        assert_eq!(kids, ["b", "c", "d"]);
        let names: Vec<&str> = result
            .touched
            .iter()
            .map(|&l| d.labels().resolve(l))
            .collect();
        assert_eq!(names, ["d", "e"]);
    }

    #[test]
    fn append_under_inner_node() {
        let base = doc("<a><b/><c/></a>");
        let record = doc("<x/>");
        let b_node = NodeId(1);
        let d = append_subtree(&base, b_node, &record).document;
        assert_eq!(d.len(), 4);
        let b = d
            .pre_order()
            .find(|&n| d.label_name(d.label(n)) == "b")
            .unwrap();
        assert_eq!(d.child_count(b), 1);
    }

    #[test]
    fn append_reuses_existing_label_ids() {
        let base = doc("<a><b/></a>");
        let record = doc("<b><b/></b>");
        let result = append_subtree(&base, base.root(), &record);
        assert_eq!(result.touched.len(), 1, "only label `b`, deduplicated");
        assert_eq!(
            result.document.labels().len(),
            base.labels().len(),
            "no new labels interned"
        );
    }

    #[test]
    fn remove_drops_whole_subtree() {
        let base = doc("<a><b><c/><d/></b><e/></a>");
        let b_node = NodeId(1);
        let result = remove_subtree(&base, b_node);
        let d = result.document;
        assert_eq!(d.len(), 2);
        // Removed labels stay resolvable: ids are stable across the edit.
        let names: Vec<&str> = result
            .touched
            .iter()
            .map(|&l| d.labels().resolve(l))
            .collect();
        assert_eq!(names, ["b", "c", "d"]);
        assert_eq!(d.labels().len(), base.labels().len());
    }

    #[test]
    #[should_panic(expected = "cannot remove the document root")]
    fn removing_root_panics() {
        let base = doc("<a><b/></a>");
        let _ = remove_subtree(&base, base.root());
    }

    #[test]
    fn pre_order_invariant_preserved() {
        let base = doc("<a><b><c/></b></a>");
        let record = doc("<x><y/></x>");
        let d = append_subtree(&base, NodeId(1), &record).document;
        for n in d.pre_order() {
            if let Some(p) = d.parent(n) {
                assert!(p.0 < n.0, "pre-order numbering violated");
            }
        }
    }
}
