//! A fast, non-cryptographic hasher (FxHash-style).
//!
//! The mining and matching hot loops hash millions of small integer keys;
//! SipHash's HashDoS resistance buys nothing there (keys are internal node
//! ids and canonical encodings, never attacker-controlled), so we use the
//! multiply-rotate scheme popularized by rustc. Implemented locally to keep
//! the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style [`Hasher`]. Fast for short keys; not DoS-resistant.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use std::hash::{BuildHasher, BuildHasherDefault};

    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ba".as_slice()));
    }

    #[test]
    fn length_extension_differs() {
        // Trailing zero bytes must not collide with the shorter key.
        assert_ne!(hash_of(&b"a\0".as_slice()), hash_of(&b"a".as_slice()));
    }

    #[test]
    fn map_basic_use() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }
}
