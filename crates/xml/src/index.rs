//! Dense struct-of-arrays document index (CSR layout).
//!
//! Every structural query the workspace's counting kernels ask of a
//! [`Document`] — "all nodes labeled `l`", "the children of `v` labeled
//! `l`", "the position of `v` among the nodes sharing its label" — is
//! answered here from three flat arrays built in one `O(|T|)` pass:
//!
//! * **label-grouped nodes**: `node_ids` holds every node id grouped by
//!   label (document order within a group); `label_offsets` delimits the
//!   groups, so the nodes labeled `l` are one contiguous slice;
//! * **rank array**: `rank[v]` is the position of node `v` inside its label
//!   group, letting per-label data live in dense vectors indexed by rank
//!   instead of hash maps keyed by node id;
//! * **label-partitioned child CSR**: `child_ids` stores each node's
//!   children grouped by label, with a per-node directory of
//!   [`ChildGroup`] ranges — the children of `v` labeled `l` are one
//!   contiguous slice, found without walking sibling links or filtering
//!   by label.
//!
//! A fourth array records the label-level adjacency (the distinct child
//! labels observed under each parent label, sorted), which bounds candidate
//! generation in the pattern miner.
//!
//! Build one index per document and share it: the exact match counter, the
//! lattice miner, the incremental updater, the workload samplers, and the
//! synopsis baselines all accept a borrowed `DocIndex`.

use crate::label::LabelId;
use crate::tree::{Document, NodeId};

/// One same-label run inside a node's child list: the children of the
/// owning node labeled [`label`](ChildGroup::label), as a range into the
/// index's child array.
#[derive(Clone, Copy, Debug)]
pub struct ChildGroup {
    /// The shared label of every child in this group.
    pub label: LabelId,
    /// Range start in [`DocIndex`]'s child array.
    start: u32,
    /// Range end (exclusive).
    end: u32,
}

impl ChildGroup {
    /// Number of children in the group.
    #[inline]
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the group is empty (never stored; groups have ≥ 1 member).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

/// Dense CSR index over one [`Document`]. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, DocIndex, ParseOptions};
///
/// let doc = parse_document(
///     b"<a><b/><c/><b/></a>",
///     ParseOptions::default(),
/// ).unwrap();
/// let idx = DocIndex::new(&doc);
/// let b = doc.labels().get("b").unwrap();
/// assert_eq!(idx.label_count(b), 2);
/// // Both <b/> children of the root are one contiguous slice.
/// assert_eq!(idx.children_with_label(doc.root(), b).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DocIndex {
    /// Nodes grouped by label: group `l` is
    /// `node_ids[label_offsets[l] .. label_offsets[l + 1]]`, document order.
    label_offsets: Vec<u32>,
    node_ids: Vec<NodeId>,
    /// `rank[v]` = position of node `v` within its label group.
    rank: Vec<u32>,
    /// `parents[v]` = parent of node `v` (`NodeId::NONE` for the root).
    /// Lets map-driven kernels walk from a child occurrence up to its
    /// candidate root without consulting the [`Document`].
    parents: Vec<u32>,
    /// Per-node child-group directory: node `v`'s groups are
    /// `groups[group_offsets[v] .. group_offsets[v + 1]]`.
    group_offsets: Vec<u32>,
    groups: Vec<ChildGroup>,
    /// All children, grouped by (parent, label), document order inside a
    /// group; `ChildGroup` ranges index into this.
    child_ids: Vec<NodeId>,
    /// `child_ranks[i] == rank[child_ids[i]]`: the within-label rank of each
    /// CSR child, precomputed so counting kernels gather per-label data with
    /// one load per child instead of chasing `child -> rank` indirection.
    child_ranks: Vec<u32>,
    /// Distinct child labels under each parent label (sorted): label `l`'s
    /// child labels are
    /// `label_child_ids[label_child_offsets[l] .. label_child_offsets[l+1]]`.
    label_child_offsets: Vec<u32>,
    label_child_ids: Vec<LabelId>,
}

impl DocIndex {
    /// Builds the index in one pass over the document (`O(|T|)` time and
    /// space, plus an `O(E log E)` sort of the label-level edge set, which
    /// is tiny — it is bounded by distinct label pairs).
    pub fn new(doc: &Document) -> Self {
        Self::new_observed(doc, &tl_obs::NOOP)
    }

    /// [`DocIndex::new`], reporting build time and size to `rec`
    /// (`xml.index.build` span, `xml.index.{builds,nodes}` counters).
    pub fn new_observed(doc: &Document, rec: &dyn tl_obs::Recorder) -> Self {
        let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_INDEX);
        rec.add(tl_obs::names::XML_INDEX_BUILDS, 1);
        rec.add(tl_obs::names::XML_INDEX_NODES, doc.len() as u64);
        let n = doc.len();
        let n_labels = doc.labels().len();

        // Label-grouped nodes + rank, by counting sort on labels.
        let mut label_offsets = vec![0u32; n_labels + 1];
        for v in doc.pre_order() {
            label_offsets[doc.label(v).index() + 1] += 1;
        }
        for l in 0..n_labels {
            label_offsets[l + 1] += label_offsets[l];
        }
        let mut cursor = label_offsets.clone();
        let mut node_ids = vec![NodeId(0); n];
        let mut rank = vec![0u32; n];
        let mut parents = vec![NodeId::NONE; n];
        for v in doc.pre_order() {
            let l = doc.label(v).index();
            let slot = cursor[l];
            cursor[l] += 1;
            node_ids[slot as usize] = v;
            rank[v.index()] = slot - label_offsets[l];
            if let Some(p) = doc.parent(v) {
                parents[v.index()] = p.0;
            }
        }

        // Label-partitioned child CSR. Children are gathered per node and
        // stably sorted by label, preserving document order within a label.
        let mut group_offsets = Vec::with_capacity(n + 1);
        group_offsets.push(0u32);
        let mut groups = Vec::new();
        let mut child_ids = Vec::with_capacity(n.saturating_sub(1));
        let mut child_ranks = Vec::with_capacity(n.saturating_sub(1));
        let mut scratch: Vec<NodeId> = Vec::new();
        for v in doc.pre_order() {
            scratch.clear();
            scratch.extend(doc.children(v));
            scratch.sort_by_key(|&c| doc.label(c)); // stable: doc order kept
            let mut i = 0;
            while i < scratch.len() {
                let label = doc.label(scratch[i]);
                let start = child_ids.len() as u32;
                while i < scratch.len() && doc.label(scratch[i]) == label {
                    child_ids.push(scratch[i]);
                    child_ranks.push(rank[scratch[i].index()]);
                    i += 1;
                }
                groups.push(ChildGroup {
                    label,
                    start,
                    end: child_ids.len() as u32,
                });
            }
            group_offsets.push(groups.len() as u32);
        }

        // Label-level adjacency: sorted, deduplicated (parent, child) label
        // pairs, folded into a CSR.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for v in doc.pre_order() {
            if let Some(p) = doc.parent(v) {
                pairs.push((doc.label(p).0, doc.label(v).0));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut label_child_offsets = vec![0u32; n_labels + 1];
        let mut label_child_ids = Vec::with_capacity(pairs.len());
        for &(parent, child) in &pairs {
            label_child_offsets[parent as usize + 1] += 1;
            label_child_ids.push(LabelId(child));
        }
        for l in 0..n_labels {
            label_child_offsets[l + 1] += label_child_offsets[l];
        }

        Self {
            label_offsets,
            node_ids,
            rank,
            parents,
            group_offsets,
            groups,
            child_ids,
            child_ranks,
            label_child_offsets,
            label_child_ids,
        }
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.node_ids.len()
    }

    /// Whether the indexed document had no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_ids.is_empty()
    }

    /// Number of labels the index covers.
    #[inline]
    pub fn n_labels(&self) -> usize {
        self.label_offsets.len() - 1
    }

    /// All nodes labeled `label`, in document order. Empty for labels the
    /// index does not know (e.g. query-only labels interned later).
    #[inline]
    pub fn nodes_with_label(&self, label: LabelId) -> &[NodeId] {
        let l = label.index();
        if l >= self.n_labels() {
            return &[];
        }
        &self.node_ids[self.label_offsets[l] as usize..self.label_offsets[l + 1] as usize]
    }

    /// Number of nodes labeled `label` (0 for unknown labels).
    #[inline]
    pub fn label_count(&self, label: LabelId) -> u64 {
        self.nodes_with_label(label).len() as u64
    }

    /// The position of node `v` within its label group: if
    /// `label(v) == l`, then `nodes_with_label(l)[rank(v)] == v`.
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// The parent of node `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parents[v.index()];
        (p != NodeId::NONE).then_some(NodeId(p))
    }

    /// The same-label child groups of `v`, each a contiguous run.
    #[inline]
    pub fn child_groups(&self, v: NodeId) -> &[ChildGroup] {
        &self.groups
            [self.group_offsets[v.index()] as usize..self.group_offsets[v.index() + 1] as usize]
    }

    /// The member nodes of one child group.
    #[inline]
    pub fn group_nodes(&self, group: ChildGroup) -> &[NodeId] {
        &self.child_ids[group.start as usize..group.end as usize]
    }

    /// The within-label ranks of one child group's members, parallel to
    /// [`DocIndex::group_nodes`]: `group_ranks(g)[i] == rank(group_nodes(g)[i])`.
    #[inline]
    pub fn group_ranks(&self, group: ChildGroup) -> &[u32] {
        &self.child_ranks[group.start as usize..group.end as usize]
    }

    /// The within-label ranks of the children of `v` labeled `label`, as
    /// one contiguous slice parallel to
    /// [`DocIndex::children_with_label`]. Counting kernels that only need
    /// per-label table positions iterate this directly — one contiguous
    /// `u32` stream, no `child -> rank` indirection per element.
    #[inline]
    pub fn child_ranks_with_label(&self, v: NodeId, label: LabelId) -> &[u32] {
        for &g in self.child_groups(v) {
            if g.label == label {
                return self.group_ranks(g);
            }
        }
        &[]
    }

    /// The children of `v` labeled `label`, as one contiguous slice
    /// (document order). Empty when `v` has no such child.
    #[inline]
    pub fn children_with_label(&self, v: NodeId, label: LabelId) -> &[NodeId] {
        for &g in self.child_groups(v) {
            if g.label == label {
                return self.group_nodes(g);
            }
        }
        &[]
    }

    /// All children of `v` (every label), grouped by label; within a group
    /// the order is document order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let gs = self.child_groups(v);
        match (gs.first(), gs.last()) {
            (Some(first), Some(last)) => &self.child_ids[first.start as usize..last.end as usize],
            _ => &[],
        }
    }

    /// The distinct labels occurring on children of `label`-labeled nodes,
    /// sorted by label id. Empty for unknown labels.
    #[inline]
    pub fn child_labels_of(&self, label: LabelId) -> &[LabelId] {
        let l = label.index();
        if l >= self.n_labels() {
            return &[];
        }
        &self.label_child_ids
            [self.label_child_offsets[l] as usize..self.label_child_offsets[l + 1] as usize]
    }

    /// Approximate heap footprint in bytes (all arrays).
    pub fn heap_bytes(&self) -> usize {
        self.label_offsets.len() * 4
            + self.node_ids.len() * 4
            + self.rank.len() * 4
            + self.parents.len() * 4
            + self.group_offsets.len() * 4
            + self.groups.len() * std::mem::size_of::<ChildGroup>()
            + self.child_ids.len() * 4
            + self.child_ranks.len() * 4
            + self.label_child_offsets.len() * 4
            + self.label_child_ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn label_groups_match_nodes_by_label() {
        let d = doc("<a><b><c/></b><b/><c/><b><c/><c/></b></a>");
        let idx = DocIndex::new(&d);
        let reference = d.nodes_by_label();
        assert_eq!(idx.n_labels(), d.labels().len());
        for (l, expected) in reference.iter().enumerate() {
            let label = LabelId(l as u32);
            assert_eq!(idx.nodes_with_label(label), expected.as_slice());
            assert_eq!(idx.label_count(label), expected.len() as u64);
        }
    }

    #[test]
    fn rank_inverts_label_groups() {
        let d = doc("<a><b/><c/><b/><c/><b/></a>");
        let idx = DocIndex::new(&d);
        for v in d.pre_order() {
            let group = idx.nodes_with_label(d.label(v));
            assert_eq!(group[idx.rank(v) as usize], v);
        }
    }

    #[test]
    fn parent_mirrors_the_document() {
        let d = doc("<a><b><c/></b><b/><c/></a>");
        let idx = DocIndex::new(&d);
        for v in d.pre_order() {
            assert_eq!(idx.parent(v), d.parent(v));
        }
        assert_eq!(idx.parent(d.root()), None);
    }

    #[test]
    fn child_groups_partition_children_by_label() {
        let d = doc("<a><b/><c/><b/><d/><c/></a>");
        let idx = DocIndex::new(&d);
        let root = d.root();
        let groups = idx.child_groups(root);
        assert_eq!(groups.len(), 3, "labels b, c, d");
        let mut seen = 0usize;
        for &g in groups {
            assert!(!g.is_empty());
            for &u in idx.group_nodes(g) {
                assert_eq!(d.label(u), g.label);
            }
            seen += g.len();
        }
        assert_eq!(seen, d.child_count(root));
        // Contiguous slices per label, document order within the label.
        let b = d.labels().get("b").unwrap();
        let bs = idx.children_with_label(root, b);
        assert_eq!(bs.len(), 2);
        assert!(bs[0].0 < bs[1].0);
    }

    #[test]
    fn child_ranks_parallel_child_ids() {
        let d = doc("<a><b/><c/><b/><d/><c/><b><c/><b/></b></a>");
        let idx = DocIndex::new(&d);
        for v in d.pre_order() {
            for &g in idx.child_groups(v) {
                let nodes = idx.group_nodes(g);
                let ranks = idx.group_ranks(g);
                assert_eq!(nodes.len(), ranks.len());
                for (&u, &r) in nodes.iter().zip(ranks) {
                    assert_eq!(r, idx.rank(u));
                }
            }
            let b = d.labels().get("b").unwrap();
            let by_label: Vec<u32> = idx
                .children_with_label(v, b)
                .iter()
                .map(|&u| idx.rank(u))
                .collect();
            assert_eq!(idx.child_ranks_with_label(v, b), by_label.as_slice());
        }
    }

    #[test]
    fn children_with_label_is_empty_for_absent_labels() {
        let d = doc("<a><b/></a>");
        let idx = DocIndex::new(&d);
        let a = d.labels().get("a").unwrap();
        assert!(idx.children_with_label(d.root(), a).is_empty());
        // Out-of-range label ids are tolerated.
        assert!(idx.nodes_with_label(LabelId(99)).is_empty());
        assert!(idx.child_labels_of(LabelId(99)).is_empty());
        assert_eq!(idx.label_count(LabelId(99)), 0);
    }

    #[test]
    fn children_covers_all_labels() {
        let d = doc("<a><b/><c/><b/></a>");
        let idx = DocIndex::new(&d);
        let all = idx.children(d.root());
        assert_eq!(all.len(), 3);
        let leaf = all[0];
        assert!(idx.children(leaf).is_empty());
    }

    #[test]
    fn label_level_adjacency_is_sorted_and_complete() {
        let d = doc("<a><b><c/><a/></b><b><d/></b></a>");
        let idx = DocIndex::new(&d);
        let a = d.labels().get("a").unwrap();
        let b = d.labels().get("b").unwrap();
        let under_b = idx.child_labels_of(b);
        assert_eq!(under_b.len(), 3, "a, c, d occur under b");
        assert!(under_b.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(idx.child_labels_of(a), &[b]);
    }

    #[test]
    fn single_node_document() {
        let d = doc("<only/>");
        let idx = DocIndex::new(&d);
        assert_eq!(idx.len(), 1);
        assert!(idx.child_groups(d.root()).is_empty());
        assert!(idx.children(d.root()).is_empty());
        assert_eq!(idx.label_count(d.label(d.root())), 1);
    }

    #[test]
    fn heap_bytes_scales_with_document() {
        let small = DocIndex::new(&doc("<a><b/></a>"));
        let mut s = String::from("<a>");
        for _ in 0..100 {
            s.push_str("<b/>");
        }
        s.push_str("</a>");
        let large = DocIndex::new(&doc(&s));
        assert!(large.heap_bytes() > small.heap_bytes());
    }
}
