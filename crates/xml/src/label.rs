//! Label interning.
//!
//! Every element tag in a document is mapped to a dense [`LabelId`] so the
//! mining and matching code can compare labels with a single integer
//! comparison and index per-label tables with plain vectors.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Interned identifier of an element label (tag name).
///
/// Ids are dense: the first distinct label interned receives id 0, the next
/// id 1, and so on. This makes `Vec<T>` indexed by `LabelId` a natural
/// per-label table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A bidirectional mapping between label strings and dense [`LabelId`]s.
///
/// # Examples
///
/// ```
/// use tl_xml::LabelInterner;
///
/// let mut interner = LabelInterner::new();
/// let a = interner.intern("book");
/// let b = interner.intern("author");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("book"), a);
/// assert_eq!(interner.resolve(a), "book");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, LabelId>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Repeated calls with the same string
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("more than u32::MAX labels"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label without inserting.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_str()))
    }

    /// Interns every label of `other` (in `other`'s id order) and returns
    /// the translation table: `map[other_id.index()]` is the id the same
    /// string carries in `self`.
    ///
    /// Growth is prefix-consistent — ids already assigned in `self` never
    /// change — so repeatedly extending one shared interner from a sequence
    /// of documents yields a label universe that depends only on the
    /// sequence order, not on how the work was later sharded. This is the
    /// property corpus mining relies on to make summary merging a pure
    /// count addition.
    pub fn extend_from(&mut self, other: &LabelInterner) -> Vec<LabelId> {
        other.names.iter().map(|name| self.intern(name)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = LabelInterner::new();
        let a = it.intern("x");
        let b = it.intern("x");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut it = LabelInterner::new();
        assert_eq!(it.intern("a"), LabelId(0));
        assert_eq!(it.intern("b"), LabelId(1));
        assert_eq!(it.intern("c"), LabelId(2));
        assert_eq!(it.intern("b"), LabelId(1));
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = LabelInterner::new();
        let names = ["alpha", "beta", "gamma", "delta"];
        let ids: Vec<_> = names.iter().map(|n| it.intern(n)).collect();
        for (id, name) in ids.iter().zip(names.iter()) {
            assert_eq!(it.resolve(*id), *name);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = LabelInterner::new();
        assert_eq!(it.get("missing"), None);
        assert!(it.is_empty());
        let id = it.intern("present");
        assert_eq!(it.get("present"), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn iter_yields_all_pairs_in_order() {
        let mut it = LabelInterner::new();
        it.intern("one");
        it.intern("two");
        let pairs: Vec<_> = it.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "one".to_owned()), (1, "two".to_owned())]);
    }

    #[test]
    fn extend_from_translates_and_is_prefix_consistent() {
        let mut target = LabelInterner::new();
        target.intern("a");
        target.intern("b");
        let mut other = LabelInterner::new();
        other.intern("b");
        other.intern("c");
        let map = target.extend_from(&other);
        // other's "b" (id 0) maps onto target's existing id 1; "c" is fresh.
        assert_eq!(map, vec![LabelId(1), LabelId(2)]);
        assert_eq!(target.get("a"), Some(LabelId(0)), "existing ids unchanged");
        assert_eq!(target.resolve(LabelId(2)), "c");
        // Extending again is a no-op translation.
        assert_eq!(target.extend_from(&other), map);
    }

    #[test]
    fn unicode_labels_are_supported() {
        let mut it = LabelInterner::new();
        let id = it.intern("ação");
        assert_eq!(it.resolve(id), "ação");
    }
}
