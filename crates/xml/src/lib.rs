//! # tl-xml — arena-based labeled XML document trees
//!
//! This crate is the document substrate for the TreeLattice selectivity
//! estimation framework. An XML document is modeled exactly as in the paper
//! (§2.1): a large rooted, node-labeled tree where interior nodes carry
//! element tags (values are not modeled). The representation is an arena:
//! all nodes live in a single `Vec`, node identity is a `u32` index, and
//! labels are interned to dense `u32` ids so that structural algorithms
//! never touch strings.
//!
//! Provided here:
//!
//! * [`LabelInterner`] / [`LabelId`] — string interning for element tags;
//! * [`Document`] / [`NodeId`] — the arena tree with parent /
//!   first-child / next-sibling links and pre-order node numbering;
//! * [`DocIndex`] — a dense CSR view of one document (nodes grouped by
//!   label, label-partitioned child adjacency, within-label rank array)
//!   shared by the counting kernels across the workspace;
//! * [`DocumentBuilder`] — incremental construction (used by the parser and
//!   by the synthetic data generators);
//! * [`parser`] — a small, dependency-free XML parser covering the element
//!   structure subset the paper needs (tags, attributes, text, comments,
//!   CDATA, processing instructions, DOCTYPE skipping);
//! * [`writer`] — serialization back to XML text;
//! * [`stats`] — structural statistics (element counts, depth and fan-out
//!   distributions) used for Table 1 of the evaluation.

pub mod builder;
pub mod graft;
pub mod hash;
pub mod index;
pub mod label;
pub mod parser;
pub mod stats;
pub mod tree;
pub mod values;
pub mod writer;

pub use builder::DocumentBuilder;
pub use graft::{append_subtree, remove_subtree, EditResult};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use index::{ChildGroup, DocIndex};
pub use label::{LabelId, LabelInterner};
pub use parser::{parse_document, parse_document_observed, ParseError, ParseOptions};
pub use stats::DocStats;
pub use tree::{Document, Node, NodeId};
pub use values::ValueMode;
pub use writer::write_document;
