//! A small, dependency-free XML parser.
//!
//! The evaluation corpora of the paper are plain element-structured XML; the
//! framework never models values (§2.1), so this parser extracts exactly the
//! element tree: start tags, end tags, self-closing tags, and — optionally —
//! attributes as synthetic `@name` child nodes. Text content, comments,
//! CDATA sections, processing instructions, the XML declaration, and DOCTYPE
//! declarations (including an internal subset) are recognized and skipped.
//!
//! The parser is a single forward pass over the input bytes with `O(depth)`
//! auxiliary state; positions in errors are 1-based line/column.

use crate::builder::{BuildError, DocumentBuilder};
use crate::tree::Document;
use crate::values::ValueMode;

/// Longest element/attribute name accepted by the parser, in bytes. Real
/// tag names are tiny; the bound exists so every label fits the summary
/// format's u16 length fields with room to spare.
pub const MAX_NAME_BYTES: usize = 4096;

/// Options controlling document construction.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// When true, each attribute `name="v"` becomes a leaf child labeled
    /// `@name` under its element, mirroring how the paper treats attribute
    /// names as labels in `Σ*` (values are still dropped).
    pub attributes_as_nodes: bool,
    /// Maximum element nesting depth accepted (guards against hostile or
    /// corrupt input blowing the builder stack).
    pub max_depth: usize,
    /// How element text content is modeled (default: ignored, the paper's
    /// base model). See [`crate::values::ValueMode`].
    pub values: ValueMode,
}

impl Default for ParseOptions {
    fn default() -> Self {
        Self {
            attributes_as_nodes: false,
            max_depth: 4096,
            values: ValueMode::Ignore,
        }
    }
}

/// A parse failure, with a 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub column: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for tl_fault::Fault {
    fn from(err: ParseError) -> Self {
        tl_fault::Fault::parse(err.to_string())
    }
}

/// Parses an XML document from `input` into an arena [`Document`].
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
///
/// let doc = parse_document(
///     b"<catalog><book id=\"1\"><title>skipped text</title></book></catalog>",
///     ParseOptions::default(),
/// )
/// .unwrap();
/// assert_eq!(doc.len(), 3);
/// ```
pub fn parse_document(input: &[u8], options: ParseOptions) -> Result<Document, ParseError> {
    parse_document_observed(input, options, &tl_obs::NOOP)
}

/// [`parse_document`], reporting wall-clock time and input/output sizes to
/// `rec` (`xml.parse` span, `xml.parse.{docs,bytes,nodes}` counters).
pub fn parse_document_observed(
    input: &[u8],
    options: ParseOptions,
    rec: &dyn tl_obs::Recorder,
) -> Result<Document, ParseError> {
    let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_PARSE);
    if tl_fault::failpoints::fire(tl_fault::failpoints::sites::XML_PARSE) {
        return Err(ParseError {
            message: format!(
                "injected by fail-point `{}`",
                tl_fault::failpoints::sites::XML_PARSE
            ),
            line: 1,
            column: 1,
        });
    }
    let doc = Parser::new(input, options).run()?;
    rec.add(tl_obs::names::XML_PARSE_DOCS, 1);
    rec.add(tl_obs::names::XML_PARSE_BYTES, input.len() as u64);
    rec.add(tl_obs::names::XML_PARSE_NODES, doc.len() as u64);
    Ok(doc)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    options: ParseOptions,
    builder: DocumentBuilder,
    /// Accumulated text content per open element (only maintained when
    /// values are modeled).
    text_stack: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a [u8], options: ParseOptions) -> Self {
        Self {
            input,
            pos: 0,
            line: 1,
            line_start: 0,
            options,
            builder: DocumentBuilder::with_capacity(input.len() / 32),
            text_stack: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            column: self.pos - self.line_start + 1,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Skips until (and past) the byte sequence `end`; errors on EOF.
    fn skip_until(&mut self, end: &[u8], what: &str) -> Result<(), ParseError> {
        while self.pos < self.input.len() {
            if self.starts_with(end) {
                self.advance(end.len());
                return Ok(());
            }
            self.bump();
        }
        Err(self.error(format!("unterminated {what}")))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_byte(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return Err(self.error("expected a name")),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_byte(b)) {
            self.bump();
        }
        // Downstream, the summary format stores label lengths as u16; bound
        // names here so hostile input is rejected at the boundary instead
        // of truncating later.
        if self.pos - start > MAX_NAME_BYTES {
            return Err(self.error(format!("name longer than {MAX_NAME_BYTES} bytes")));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| self.error("name is not valid UTF-8"))
    }

    fn run(mut self) -> Result<Document, ParseError> {
        loop {
            self.skip_whitespace();
            let Some(b) = self.peek() else { break };
            if b != b'<' {
                // Text content: only meaningful inside an element.
                if self.builder.open_depth() == 0 {
                    return Err(self.error("text content outside the root element"));
                }
                let start = self.pos;
                while self.peek().is_some_and(|b| b != b'<') {
                    self.bump();
                }
                if self.options.values != ValueMode::Ignore {
                    let chunk = decode_text(&self.input[start..self.pos]);
                    if let Some(top) = self.text_stack.last_mut() {
                        top.push_str(&chunk);
                    }
                }
                continue;
            }
            // Markup.
            if self.starts_with(b"<!--") {
                self.advance(4);
                self.skip_until(b"-->", "comment")?;
            } else if self.starts_with(b"<![CDATA[") {
                if self.builder.open_depth() == 0 {
                    return Err(self.error("CDATA outside the root element"));
                }
                self.advance(9);
                let start = self.pos;
                self.skip_until(b"]]>", "CDATA section")?;
                if self.options.values != ValueMode::Ignore {
                    let body = &self.input[start..self.pos - 3];
                    if let Some(top) = self.text_stack.last_mut() {
                        top.push_str(&String::from_utf8_lossy(body));
                    }
                }
            } else if self.starts_with(b"<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with(b"<?") {
                self.advance(2);
                self.skip_until(b"?>", "processing instruction")?;
            } else if self.starts_with(b"</") {
                self.advance(2);
                let name = self.read_name()?;
                self.skip_whitespace();
                if self.bump() != Some(b'>') {
                    return Err(self.error("expected '>' closing end tag"));
                }
                if self.builder.open_depth() == 0 {
                    return Err(self.error(format!("unmatched end tag </{name}>")));
                }
                self.emit_value_child();
                self.builder.end();
                let _ = name; // Tag-name match is validated by well-formed inputs.
            } else {
                self.parse_start_tag()?;
            }
        }
        let at_eof = ParseError {
            message: String::new(),
            line: self.line,
            column: self.pos - self.line_start + 1,
        };
        self.builder.finish().map_err(|e| ParseError {
            message: match e {
                BuildError::Empty => "document has no root element".to_owned(),
                BuildError::UnclosedElements(n) => format!("{n} unclosed element(s)"),
                BuildError::MultipleRoots => "multiple root elements".to_owned(),
            },
            ..at_eof
        })
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // <!DOCTYPE ... [ internal subset ] >
        self.advance(9);
        let mut bracket_depth = 0usize;
        while let Some(b) = self.bump() {
            match b {
                b'[' => bracket_depth += 1,
                b']' => bracket_depth = bracket_depth.saturating_sub(1),
                b'>' if bracket_depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.error("unterminated DOCTYPE"))
    }

    fn parse_start_tag(&mut self) -> Result<(), ParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.bump();
        let name = self.read_name()?;
        if self.builder.open_depth() >= self.options.max_depth {
            return Err(self.error(format!(
                "element nesting exceeds max_depth = {}",
                self.options.max_depth
            )));
        }
        self.builder.begin(&name);
        if self.options.values != ValueMode::Ignore {
            self.text_stack.push(String::new());
        }
        let mut attrs: Vec<String> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.emit_attrs(&attrs);
                    if self.options.values != ValueMode::Ignore {
                        self.text_stack.pop();
                    }
                    self.builder.end();
                    return Ok(());
                }
                Some(b) if Self::is_name_start(b) => {
                    let attr = self.read_name()?;
                    self.skip_whitespace();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.skip_whitespace();
                        let quote = self.bump();
                        if quote != Some(b'"') && quote != Some(b'\'') {
                            return Err(self.error("expected quoted attribute value"));
                        }
                        let quote = quote.unwrap();
                        while let Some(b) = self.bump() {
                            if b == quote {
                                break;
                            }
                            if self.pos >= self.input.len() {
                                return Err(self.error("unterminated attribute value"));
                            }
                        }
                    }
                    attrs.push(attr);
                }
                Some(_) => return Err(self.error("unexpected byte in start tag")),
                None => return Err(self.error("unterminated start tag")),
            }
        }
        self.emit_attrs(&attrs);
        Ok(())
    }

    /// Emits the synthetic value child of the element being closed, if its
    /// accumulated text content maps to a value label.
    fn emit_value_child(&mut self) {
        if self.options.values == ValueMode::Ignore {
            return;
        }
        let text = self.text_stack.pop().unwrap_or_default();
        if let Some(label) = self.options.values.value_label(&text) {
            self.builder.begin(&label);
            self.builder.end();
        }
    }

    fn emit_attrs(&mut self, attrs: &[String]) {
        if !self.options.attributes_as_nodes {
            return;
        }
        for attr in attrs {
            self.builder.begin(&format!("@{attr}"));
            self.builder.end();
        }
    }
}

/// Decodes the five predefined XML entities in a text chunk; unknown
/// entities are kept verbatim.
fn decode_text(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    if !text.contains('&') {
        return text.into_owned();
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_ref();
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let mut replaced = false;
        for (entity, ch) in [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ] {
            if let Some(after) = rest.strip_prefix(entity) {
                out.push(ch);
                rest = after;
                replaced = true;
                break;
            }
        }
        if !replaced {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn simple_document() {
        let d = parse("<a><b/><c><d/></c></a>");
        assert_eq!(d.len(), 4);
        let kids: Vec<_> = d
            .children(d.root())
            .map(|c| d.label_name(d.label(c)).to_owned())
            .collect();
        assert_eq!(kids, ["b", "c"]);
    }

    #[test]
    fn text_is_skipped() {
        let d = parse("<a>hello <b>world</b> bye</a>");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn prolog_comment_cdata_pi_doctype() {
        let d = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [ <!ELEMENT a (b)> ]>\n\
             <!-- top comment -->\n<a><?pi data?><![CDATA[< not a tag >]]><b/></a>",
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn attributes_skipped_by_default() {
        let d = parse("<a x=\"1\" y='2'><b z=\"3\"/></a>");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn attributes_as_nodes() {
        let d = parse_document(
            b"<a x=\"1\" y='2'><b/></a>",
            ParseOptions {
                attributes_as_nodes: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.len(), 4);
        let kids: Vec<_> = d
            .children(d.root())
            .map(|c| d.label_name(d.label(c)).to_owned())
            .collect();
        assert_eq!(kids, ["@x", "@y", "b"]);
    }

    #[test]
    fn self_closing_root() {
        let d = parse("<only/>");
        assert_eq!(d.len(), 1);
        assert!(d.is_leaf(d.root()));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_document(b"<a>\n  <b></b\n</a>", ParseOptions::default()).unwrap_err();
        assert_eq!(err.line, 3, "error should be located on line 3: {err}");
    }

    #[test]
    fn unmatched_end_tag_is_an_error() {
        let err = parse_document(b"<a></a></b>", ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("unmatched end tag"), "{err}");
    }

    #[test]
    fn unclosed_element_is_an_error() {
        let err = parse_document(b"<a><b></a>", ParseOptions::default()).unwrap_err();
        // Our structural parser counts opens/closes; <b> stays open.
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn multiple_roots_are_an_error() {
        let err = parse_document(b"<a/><b/>", ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("multiple root"), "{err}");
    }

    #[test]
    fn text_outside_root_is_an_error() {
        let err = parse_document(b"stray<a/>", ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("outside the root"), "{err}");
    }

    #[test]
    fn depth_limit_enforced() {
        let mut s = String::new();
        for _ in 0..20 {
            s.push_str("<d>");
        }
        for _ in 0..20 {
            s.push_str("</d>");
        }
        let err = parse_document(
            s.as_bytes(),
            ParseOptions {
                max_depth: 10,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.message.contains("max_depth"), "{err}");
    }

    #[test]
    fn unicode_tag_names() {
        let d = parse("<données><élément/></données>");
        assert_eq!(d.label_name(d.label(d.root())), "données");
    }

    #[test]
    fn values_ignored_by_default() {
        let d = parse("<a><b>Dell</b></a>");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn values_as_labels() {
        use crate::values::ValueMode;
        let d = parse_document(
            b"<a><b>Dell</b><b>HP</b><b>Dell</b></a>",
            ParseOptions {
                values: ValueMode::AsLabels,
                ..Default::default()
            },
        )
        .unwrap();
        // a + 3 b + 3 value children.
        assert_eq!(d.len(), 7);
        let dell = d.labels().get("=Dell").unwrap();
        let count = d.pre_order().filter(|&n| d.label(n) == dell).count();
        assert_eq!(count, 2);
        // Value children hang under their elements.
        let with_dell = d
            .pre_order()
            .filter(|&n| d.children(n).any(|c| d.label(c) == dell))
            .count();
        assert_eq!(with_dell, 2);
    }

    #[test]
    fn values_bucketed() {
        use crate::values::ValueMode;
        let d = parse_document(
            b"<a><b>x</b><b>x</b><b>y</b></a>",
            ParseOptions {
                values: ValueMode::Bucketed(64),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.len(), 7);
        // Same value -> same bucket label; the interner has <= 2 bucket labels.
        let buckets = d
            .labels()
            .iter()
            .filter(|(_, name)| name.starts_with("#v"))
            .count();
        assert!(buckets == 1 || buckets == 2);
    }

    #[test]
    fn values_decode_entities_and_cdata() {
        use crate::values::ValueMode;
        let d = parse_document(
            b"<a><b>A &amp; B</b><c><![CDATA[A & B]]></c></a>",
            ParseOptions {
                values: ValueMode::AsLabels,
                ..Default::default()
            },
        )
        .unwrap();
        let label = d.labels().get("=A & B").expect("decoded label exists");
        let n = d.pre_order().filter(|&v| d.label(v) == label).count();
        assert_eq!(n, 2, "entity-decoded and CDATA text agree");
    }

    #[test]
    fn whitespace_only_text_produces_no_value_child() {
        use crate::values::ValueMode;
        let d = parse_document(
            b"<a>\n  <b/>\n</a>",
            ParseOptions {
                values: ValueMode::AsLabels,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn oversized_names_are_rejected() {
        let name = "x".repeat(MAX_NAME_BYTES + 1);
        let xml = format!("<{name}/>");
        let err = parse_document(xml.as_bytes(), ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("longer than"), "{err}");
        // At the limit it still parses.
        let ok_name = "x".repeat(MAX_NAME_BYTES);
        let ok = parse_document(format!("<{ok_name}/>").as_bytes(), ParseOptions::default());
        assert!(ok.is_ok());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = parse_document(b"<a><!-- oops </a>", ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("unterminated comment"), "{err}");
    }
}
