//! Structural statistics over documents.
//!
//! [`DocStats`] computes the dataset characteristics the paper reports in
//! Table 1 (element count, serialized size) plus the structural quantities
//! that drive estimation quality: depth distribution, fan-out distribution
//! (mean/variance/max), and per-label counts. The fan-out variance is the
//! quantity §5.3 identifies as the failure mode of average-based synopses.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::label::LabelId;
use crate::tree::Document;

/// Summary statistics of a document tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DocStats {
    /// Total number of element nodes.
    pub elements: usize,
    /// Number of distinct labels.
    pub distinct_labels: usize,
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Mean depth over all nodes.
    pub mean_depth: f64,
    /// Mean number of children over internal (non-leaf) nodes.
    pub mean_fanout: f64,
    /// Variance of the child count over internal nodes.
    pub fanout_variance: f64,
    /// Largest child count of any node.
    pub max_fanout: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Serialized size in bytes (indented XML, as written by the writer).
    pub serialized_bytes: usize,
    /// Count of nodes per label id (indexed by `LabelId::index()`).
    pub label_counts: Vec<u64>,
}

impl DocStats {
    /// Computes statistics for `doc` in two passes (one structural, one to
    /// measure the serialized size).
    pub fn compute(doc: &Document) -> Self {
        let mut max_depth = 0usize;
        let mut depth_sum = 0u64;
        let mut fanout_sum = 0u64;
        let mut fanout_sq_sum = 0f64;
        let mut internal = 0usize;
        let mut leaves = 0usize;
        let mut max_fanout = 0usize;
        let mut label_counts = vec![0u64; doc.labels().len()];

        // Depths computed incrementally: pre-order guarantees a parent is
        // visited before its children, so a single vector of depths works.
        let mut depths = vec![0u32; doc.len()];
        for id in doc.pre_order() {
            let d = match doc.parent(id) {
                Some(p) => depths[p.index()] + 1,
                None => 0,
            };
            depths[id.index()] = d;
            max_depth = max_depth.max(d as usize);
            depth_sum += u64::from(d);
            label_counts[doc.label(id).index()] += 1;
            let k = doc.child_count(id);
            if k == 0 {
                leaves += 1;
            } else {
                internal += 1;
                fanout_sum += k as u64;
                fanout_sq_sum += (k as f64) * (k as f64);
                max_fanout = max_fanout.max(k);
            }
        }
        let n = doc.len();
        let mean_fanout = if internal > 0 {
            fanout_sum as f64 / internal as f64
        } else {
            0.0
        };
        let fanout_variance = if internal > 0 {
            (fanout_sq_sum / internal as f64) - mean_fanout * mean_fanout
        } else {
            0.0
        };
        let serialized_bytes = {
            let mut counter = ByteCounter(0);
            crate::writer::write_document(doc, &mut counter).expect("counting cannot fail");
            counter.0
        };
        Self {
            elements: n,
            distinct_labels: doc.labels().len(),
            max_depth,
            mean_depth: if n > 0 {
                depth_sum as f64 / n as f64
            } else {
                0.0
            },
            mean_fanout,
            fanout_variance: fanout_variance.max(0.0),
            max_fanout,
            leaves,
            serialized_bytes,
            label_counts,
        }
    }

    /// Count of nodes carrying `label`.
    pub fn label_count(&self, label: LabelId) -> u64 {
        self.label_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Serialized size in megabytes (as Table 1 reports it).
    pub fn serialized_mb(&self) -> f64 {
        self.serialized_bytes as f64 / (1024.0 * 1024.0)
    }

    /// The most frequent labels, as `(label, count)` pairs, descending.
    pub fn top_labels(&self, k: usize) -> Vec<(LabelId, u64)> {
        let mut pairs: Vec<(LabelId, u64)> = self
            .label_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (LabelId(i as u32), c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// Histogram of depth -> node count (useful for generator calibration).
    pub fn depth_histogram(doc: &Document) -> HashMap<usize, usize> {
        let mut depths = vec![0u32; doc.len()];
        let mut hist = HashMap::new();
        for id in doc.pre_order() {
            let d = match doc.parent(id) {
                Some(p) => depths[p.index()] + 1,
                None => 0,
            };
            depths[id.index()] = d;
            *hist.entry(d as usize).or_insert(0) += 1;
        }
        hist
    }
}

/// An `io::Write` sink that only counts bytes.
struct ByteCounter(usize);

impl std::io::Write for ByteCounter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn counts_on_small_document() {
        let d = doc("<a><b/><b/><c><d/></c></a>");
        let s = DocStats::compute(&d);
        assert_eq!(s.elements, 5);
        assert_eq!(s.distinct_labels, 4);
        assert_eq!(s.leaves, 3);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 3);
        let b = d.labels().get("b").unwrap();
        assert_eq!(s.label_count(b), 2);
    }

    #[test]
    fn fanout_moments() {
        // Root has 4 children; one child has 2; all others are leaves.
        let d = doc("<r><x/><x/><x/><y><z/><z/></y></r>");
        let s = DocStats::compute(&d);
        // Internal nodes: r (4 kids), y (2 kids). mean = 3, var = 1.
        assert!((s.mean_fanout - 3.0).abs() < 1e-12);
        assert!((s.fanout_variance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_document() {
        let d = doc("<only/>");
        let s = DocStats::compute(&d);
        assert_eq!(s.elements, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.mean_fanout, 0.0);
        assert!(s.serialized_bytes > 0);
    }

    #[test]
    fn depth_histogram_sums_to_node_count() {
        let d = doc("<a><b><c/><c/></b><b/></a>");
        let h = DocStats::depth_histogram(&d);
        assert_eq!(h.values().sum::<usize>(), d.len());
        assert_eq!(h[&0], 1);
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 2);
    }

    #[test]
    fn top_labels_sorted_descending() {
        let d = doc("<a><b/><b/><b/><c/><c/></a>");
        let s = DocStats::compute(&d);
        let top = s.top_labels(2);
        assert_eq!(d.labels().resolve(top[0].0), "b");
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].1, 2);
    }
}
