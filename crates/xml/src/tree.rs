//! The arena document tree.
//!
//! A [`Document`] is the paper's data tree `T = (V_T, E_T)`: rooted, ordered
//! (document order), node-labeled. Nodes are stored contiguously; links are
//! `u32` indices. Construction guarantees pre-order numbering: the arena
//! index of a node equals its position in a pre-order (document-order)
//! traversal, a property several algorithms in the workspace rely on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::label::{LabelId, LabelInterner};

/// Index of a node inside a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Sentinel meaning "no node" in link fields.
    pub(crate) const NONE: u32 = u32::MAX;

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// One node of the document tree.
///
/// Links use the classic first-child / next-sibling encoding, so a `Node` is
/// 16 bytes regardless of fan-out.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Interned element label.
    pub label: LabelId,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) next_sibling: u32,
}

/// A rooted, ordered, node-labeled document tree in arena form.
///
/// # Examples
///
/// ```
/// use tl_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// let root = b.begin("catalog");
/// b.begin("book");
/// b.begin("title");
/// b.end(); // title
/// b.end(); // book
/// b.end(); // catalog
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.len(), 3);
/// assert_eq!(doc.label_name(doc.node(root).label), "catalog");
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) labels: LabelInterner,
    pub(crate) root: NodeId,
}

impl Document {
    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has no nodes (never true for a built document,
    /// which always has a root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node record.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The label of node `id`.
    #[inline]
    pub fn label(&self, id: NodeId) -> LabelId {
        self.nodes[id.index()].label
    }

    /// The parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.nodes[id.index()].parent;
        (p != NodeId::NONE).then_some(NodeId(p))
    }

    /// The label interner for this document.
    #[inline]
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Resolve a label id to its tag name.
    #[inline]
    pub fn label_name(&self, label: LabelId) -> &str {
        self.labels.resolve(label)
    }

    /// Iterates over the children of `id` in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            cur: self.nodes[id.index()].first_child,
        }
    }

    /// Number of children of `id` (walks the sibling chain).
    pub fn child_count(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].first_child == NodeId::NONE
    }

    /// Iterates over all node ids in pre-order (document order).
    ///
    /// Because the builder assigns arena slots in pre-order, this is simply
    /// an index scan.
    #[inline]
    pub fn pre_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of node `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Collects the labels on the root-to-`id` path, root first.
    pub fn path_labels(&self, id: NodeId) -> Vec<LabelId> {
        let mut path = vec![self.label(id)];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(self.label(p));
            cur = p;
        }
        path.reverse();
        path
    }

    /// Builds a per-label index: for each label id, the document nodes (in
    /// document order) that carry it. The outer vector is indexed by
    /// [`LabelId::index`].
    pub fn nodes_by_label(&self) -> Vec<Vec<NodeId>> {
        let mut index = vec![Vec::new(); self.labels.len()];
        for id in self.pre_order() {
            index[self.label(id).index()].push(id);
        }
        index
    }

    /// Approximate in-memory size of the tree structure in bytes (nodes plus
    /// interner strings); used when reporting summary-to-document ratios.
    pub fn heap_size_bytes(&self) -> usize {
        let node_bytes = self.nodes.len() * std::mem::size_of::<Node>();
        let label_bytes: usize = self.labels.iter().map(|(_, s)| s.len() + 16).sum();
        node_bytes + label_bytes
    }
}

/// Iterator over the children of a node. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    cur: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NodeId::NONE {
            return None;
        }
        let id = NodeId(self.cur);
        self.cur = self.doc.nodes[id.index()].next_sibling;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DocumentBuilder;

    use super::*;

    /// Builds the sample document of the paper's Figure 1(a):
    /// computer -> laptops -> laptop{brand,price} x2, computer -> desktops.
    fn figure1_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("computer");
        b.begin("laptops");
        for _ in 0..2 {
            b.begin("laptop");
            b.begin("brand");
            b.end();
            b.begin("price");
            b.end();
            b.end();
        }
        b.end();
        b.begin("desktops");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn figure1_shape() {
        let d = figure1_doc();
        assert_eq!(d.len(), 9);
        let root = d.root();
        assert_eq!(d.label_name(d.label(root)), "computer");
        assert_eq!(d.child_count(root), 2);
        let kids: Vec<_> = d
            .children(root)
            .map(|c| d.label_name(d.label(c)).to_owned())
            .collect();
        assert_eq!(kids, ["laptops", "desktops"]);
    }

    #[test]
    fn preorder_ids_are_sequential() {
        let d = figure1_doc();
        let ids: Vec<u32> = d.pre_order().map(|n| n.0).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        // Pre-order invariant: a child's arena index is greater than its
        // parent's.
        for id in d.pre_order() {
            if let Some(p) = d.parent(id) {
                assert!(p.0 < id.0);
            }
        }
    }

    #[test]
    fn depth_and_path() {
        let d = figure1_doc();
        let brand = d
            .pre_order()
            .find(|&n| d.label_name(d.label(n)) == "brand")
            .unwrap();
        assert_eq!(d.depth(brand), 3);
        let path: Vec<_> = d
            .path_labels(brand)
            .into_iter()
            .map(|l| d.label_name(l).to_owned())
            .collect();
        assert_eq!(path, ["computer", "laptops", "laptop", "brand"]);
    }

    #[test]
    fn nodes_by_label_counts() {
        let d = figure1_doc();
        let idx = d.nodes_by_label();
        let laptop = d.labels().get("laptop").unwrap();
        let brand = d.labels().get("brand").unwrap();
        assert_eq!(idx[laptop.index()].len(), 2);
        assert_eq!(idx[brand.index()].len(), 2);
    }

    #[test]
    fn leaves_detected() {
        let d = figure1_doc();
        let leaf_labels: Vec<_> = d
            .pre_order()
            .filter(|&n| d.is_leaf(n))
            .map(|n| d.label_name(d.label(n)).to_owned())
            .collect();
        assert_eq!(
            leaf_labels,
            ["brand", "price", "brand", "price", "desktops"]
        );
    }

    #[test]
    fn node_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 16);
    }
}
