//! Value modeling: mapping element text content to synthetic labels.
//!
//! The paper explicitly leaves values out of the model (§2.1) and lists
//! "twig queries with value predicates" as future work (§6). This module
//! supplies the extension in the way that keeps the entire TreeLattice
//! pipeline unchanged: an element's text content becomes a *synthetic leaf
//! child* whose label encodes the value, so value predicates are just
//! ordinary twig edges and the lattice summarizes structure and values
//! uniformly (the same trick XSketches plays with value distributions,
//! transplanted to the lattice world).
//!
//! Two encodings are provided:
//!
//! * [`ValueMode::AsLabels`] — the exact value string becomes the label
//!   (`=Dell`). Exact, but the label space grows with distinct values;
//!   intended for ground-truth counting and small domains.
//! * [`ValueMode::Bucketed`] — values hash into `b` buckets (`#v17`).
//!   Bounded label space; equality predicates are estimated with a
//!   collision-induced *over*count (never an undercount), the classic
//!   hashed-histogram trade-off.

use std::hash::{BuildHasher as _, BuildHasherDefault, Hasher as _};

use crate::hash::FxHasher;

/// How element text content is modeled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueMode {
    /// Drop values entirely (the paper's base model).
    #[default]
    Ignore,
    /// One synthetic label per distinct value (`=Dell`).
    AsLabels,
    /// Hash values into this many buckets (`#v17`).
    Bucketed(u32),
}

/// Longest value prefix used for `AsLabels` labels; longer values are
/// truncated (at a char boundary) so labels stay bounded.
pub const MAX_VALUE_LABEL_BYTES: usize = 64;

impl ValueMode {
    /// The synthetic label for `text` under this mode; `None` when values
    /// are ignored or the text is pure whitespace.
    pub fn value_label(self, text: &str) -> Option<String> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return None;
        }
        match self {
            ValueMode::Ignore => None,
            ValueMode::AsLabels => {
                let mut end = MAX_VALUE_LABEL_BYTES.min(trimmed.len());
                while !trimmed.is_char_boundary(end) {
                    end -= 1;
                }
                Some(format!("={}", &trimmed[..end]))
            }
            ValueMode::Bucketed(buckets) => {
                let b = buckets.max(1);
                let mut hasher = BuildHasherDefault::<FxHasher>::default().build_hasher();
                hasher.write(trimmed.as_bytes());
                // Fx's multiply only mixes low bits upward, so same-prefix
                // values differ only in high bits; run a full avalanche
                // (Murmur3 finalizer) before reducing to a bucket.
                let mut h = hasher.finish();
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                Some(format!("#v{}", h % u64::from(b)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignore_yields_nothing() {
        assert_eq!(ValueMode::Ignore.value_label("Dell"), None);
    }

    #[test]
    fn whitespace_yields_nothing() {
        for mode in [ValueMode::AsLabels, ValueMode::Bucketed(8)] {
            assert_eq!(mode.value_label("   \n\t "), None);
        }
    }

    #[test]
    fn as_labels_is_exact_and_trimmed() {
        assert_eq!(
            ValueMode::AsLabels.value_label("  Dell XPS  "),
            Some("=Dell XPS".to_owned())
        );
    }

    #[test]
    fn as_labels_truncates_long_values_at_char_boundary() {
        let long = "é".repeat(100); // 2 bytes per char
        let label = ValueMode::AsLabels.value_label(&long).unwrap();
        assert!(label.len() <= MAX_VALUE_LABEL_BYTES + 1);
        assert!(label.starts_with('='));
        // Still valid UTF-8 by construction (String), and non-empty.
        assert!(label.len() > 1);
    }

    #[test]
    fn buckets_are_stable_and_in_range() {
        let mode = ValueMode::Bucketed(16);
        let a = mode.value_label("Dell").unwrap();
        let b = mode.value_label("Dell").unwrap();
        assert_eq!(a, b);
        let n: u64 = a.strip_prefix("#v").unwrap().parse().unwrap();
        assert!(n < 16);
    }

    #[test]
    fn different_values_usually_differ() {
        let mode = ValueMode::Bucketed(1024);
        let distinct: std::collections::HashSet<String> = (0..100)
            .map(|i| mode.value_label(&format!("value-{i}")).unwrap())
            .collect();
        assert!(
            distinct.len() > 90,
            "only {} distinct buckets",
            distinct.len()
        );
    }

    #[test]
    fn zero_buckets_clamped() {
        assert_eq!(
            ValueMode::Bucketed(0).value_label("x"),
            Some("#v0".to_owned())
        );
    }
}
