//! Serialization of a [`Document`] back to XML text.
//!
//! Used by the dataset generators to materialize corpora on disk and by
//! tests to verify parse/write round trips. Plain documents emit pure
//! element structure (leaves self-closing); synthetic value children
//! produced by a [`ValueMode`](crate::values::ValueMode) are written back
//! as escaped text content, so `AsLabels` documents round-trip exactly.

use std::io::{self, Write};

use crate::tree::{Document, NodeId};

/// Writes `doc` as indented XML to `out`.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, write_document, ParseOptions};
///
/// let doc = parse_document(b"<a><b/><c><d/></c></a>", ParseOptions::default()).unwrap();
/// let mut buf = Vec::new();
/// write_document(&doc, &mut buf).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.contains("<b/>"));
/// ```
pub fn write_document<W: Write>(doc: &Document, out: &mut W) -> io::Result<()> {
    write_subtree(doc, doc.root(), 0, out)?;
    out.write_all(b"\n")
}

/// Writes the subtree rooted at `node` with the given indent depth.
pub fn write_subtree<W: Write>(
    doc: &Document,
    node: NodeId,
    indent: usize,
    out: &mut W,
) -> io::Result<()> {
    // Explicit stack: (node, entering) frames avoid recursion on documents
    // that are pathologically deep.
    enum Frame {
        Enter(NodeId, usize),
        Exit(NodeId, usize),
    }
    let mut stack = vec![Frame::Enter(node, indent)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(n, ind) => {
                for _ in 0..ind {
                    out.write_all(b"  ")?;
                }
                let name = doc.label_name(doc.label(n));
                // Synthetic value children (from `ValueMode`) are emitted
                // back as text content, not as (illegal) element names;
                // `AsLabels` documents round-trip exactly this way.
                let children: Vec<_> = doc.children(n).collect();
                let (values, elements): (Vec<NodeId>, Vec<NodeId>) = children
                    .iter()
                    .partition(|&&c| value_text(doc, c).is_some());
                if doc.is_leaf(n) {
                    writeln!(out, "<{name}/>")?;
                } else if elements.is_empty() && values.len() == 1 {
                    let text = value_text(doc, values[0]).expect("partitioned as value");
                    writeln!(out, "<{name}>{}</{name}>", escape_text(text))?;
                } else {
                    writeln!(out, "<{name}>")?;
                    for &v in &values {
                        for _ in 0..=ind {
                            out.write_all(b"  ")?;
                        }
                        let text = value_text(doc, v).expect("partitioned as value");
                        writeln!(out, "{}", escape_text(text))?;
                    }
                    stack.push(Frame::Exit(n, ind));
                    for &c in elements.iter().rev() {
                        stack.push(Frame::Enter(c, ind + 1));
                    }
                }
            }
            Frame::Exit(n, ind) => {
                for _ in 0..ind {
                    out.write_all(b"  ")?;
                }
                writeln!(out, "</{}>", doc.label_name(doc.label(n)))?;
            }
        }
    }
    Ok(())
}

/// The text a synthetic value node stands for, or `None` for a regular
/// element. Value nodes are leaves labeled `=<text>` ([`ValueMode::AsLabels`])
/// or `#v<bucket>` ([`ValueMode::Bucketed`]); bucketed values have lost the
/// original text and are emitted as their bucket token.
///
/// [`ValueMode::AsLabels`]: crate::values::ValueMode::AsLabels
/// [`ValueMode::Bucketed`]: crate::values::ValueMode::Bucketed
fn value_text(doc: &Document, node: NodeId) -> Option<&str> {
    if !doc.is_leaf(node) {
        return None;
    }
    let name = doc.label_name(doc.label(node));
    if let Some(text) = name.strip_prefix('=') {
        Some(text)
    } else if name.starts_with("#v") {
        Some(name)
    } else {
        None
    }
}

/// Escapes the three characters XML text content cannot contain raw.
fn escape_text(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders `doc` to a `String` (convenience over [`write_document`]).
pub fn document_to_string(doc: &Document) -> String {
    let mut buf = Vec::new();
    write_document(doc, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("writer emits UTF-8")
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_document, ParseOptions};

    use super::*;

    #[test]
    fn round_trip_preserves_structure() {
        let src = b"<a><b/><c><d/><e><f/></e></c></a>";
        let d1 = parse_document(src, ParseOptions::default()).unwrap();
        let text = document_to_string(&d1);
        let d2 = parse_document(text.as_bytes(), ParseOptions::default()).unwrap();
        assert_eq!(d1.len(), d2.len());
        // Same pre-order label sequence and parent structure.
        for (a, b) in d1.pre_order().zip(d2.pre_order()) {
            assert_eq!(
                d1.label_name(d1.label(a)),
                d2.label_name(d2.label(b)),
                "pre-order label mismatch"
            );
            assert_eq!(
                d1.parent(a).map(|p| p.0),
                d2.parent(b).map(|p| p.0),
                "parent structure mismatch"
            );
        }
    }

    #[test]
    fn leaf_root_is_self_closing() {
        let d = parse_document(b"<solo/>", ParseOptions::default()).unwrap();
        assert_eq!(document_to_string(&d), "<solo/>\n\n");
    }

    #[test]
    fn valued_documents_round_trip_through_text() {
        use crate::values::ValueMode;
        let options = ParseOptions {
            values: ValueMode::AsLabels,
            ..Default::default()
        };
        let d1 = parse_document(
            b"<catalog><laptop><brand>Dell &amp; Co</brand><price>999</price></laptop></catalog>",
            options,
        )
        .unwrap();
        let text = document_to_string(&d1);
        assert!(text.contains("<brand>Dell &amp; Co</brand>"), "{text}");
        assert!(!text.contains("<="), "no illegal element names: {text}");
        let d2 = parse_document(text.as_bytes(), options).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.pre_order().zip(d2.pre_order()) {
            assert_eq!(d1.label_name(d1.label(a)), d2.label_name(d2.label(b)));
        }
    }

    #[test]
    fn mixed_values_and_elements_both_emitted() {
        use crate::values::ValueMode;
        let options = ParseOptions {
            values: ValueMode::AsLabels,
            ..Default::default()
        };
        let d = parse_document(b"<a>hello<b/></a>", options).unwrap();
        let text = document_to_string(&d);
        assert!(text.contains("hello"), "{text}");
        assert!(text.contains("<b/>"), "{text}");
        let back = parse_document(text.as_bytes(), options).unwrap();
        assert_eq!(back.len(), d.len());
    }

    #[test]
    fn deep_document_does_not_overflow_stack() {
        let mut s = String::new();
        for _ in 0..3000 {
            s.push_str("<d>");
        }
        for _ in 0..3000 {
            s.push_str("</d>");
        }
        let d = parse_document(
            s.as_bytes(),
            ParseOptions {
                max_depth: 5000,
                ..Default::default()
            },
        )
        .unwrap();
        let out = document_to_string(&d);
        assert!(out.lines().count() >= 6000);
    }
}
