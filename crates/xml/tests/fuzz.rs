//! Fuzz-style robustness tests for the XML parser.
//!
//! The parser is the first crate boundary untrusted bytes cross, so its
//! contract is strict: for *any* input it returns `Ok(Document)` or a
//! positioned `ParseError` — never a panic, never unbounded recursion or
//! memory (the depth cap guards hostile nesting). Proptest drives random
//! byte soup and markup-shaped soup through it; the targeted cases cover
//! pathological nesting and unclosed documents.

use proptest::prelude::*;
use tl_xml::{parse_document, ParseOptions, ValueMode};

proptest! {
    /// Arbitrary byte soup: parse must return a value, never panic. (A
    /// panic would fail the test; OOM/stack overflow would abort it.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse_document(&bytes, ParseOptions::default()) {
            Ok(doc) => prop_assert!(!doc.is_empty()),
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(e.column >= 1);
            }
        }
    }

    /// Markup-shaped soup — drawn from an alphabet dense in XML
    /// metacharacters so tag/attribute/comment code paths actually run.
    #[test]
    fn markup_soup_never_panics(picks in prop::collection::vec(any::<u8>(), 0..256)) {
        const ALPHABET: &[u8] = b"<>/=!?-'\" \tab\n&;[]cD";
        let bytes: Vec<u8> = picks
            .iter()
            .map(|&p| ALPHABET[p as usize % ALPHABET.len()])
            .collect();
        for opts in [
            ParseOptions::default(),
            ParseOptions { attributes_as_nodes: true, ..ParseOptions::default() },
            ParseOptions { values: ValueMode::AsLabels, ..ParseOptions::default() },
        ] {
            if let Err(e) = parse_document(&bytes, opts) {
                prop_assert!(e.line >= 1 && e.column >= 1);
            }
        }
    }

    /// Any nesting deeper than the configured cap is rejected with a parse
    /// error — bounded memory no matter how deep the input goes.
    #[test]
    fn nesting_beyond_cap_is_rejected(depth in 5usize..64) {
        let mut input = Vec::new();
        for _ in 0..depth {
            input.extend_from_slice(b"<a>");
        }
        for _ in 0..depth {
            input.extend_from_slice(b"</a>");
        }
        let opts = ParseOptions { max_depth: 4, ..ParseOptions::default() };
        let err = parse_document(&input, opts).unwrap_err();
        prop_assert!(err.message.contains("depth"), "unexpected error: {}", err.message);
    }
}

/// A megabyte of unclosed `<a>` tags: the default depth cap must stop it
/// with an error long before the builder stack grows with the input.
#[test]
fn pathological_unclosed_nesting_errors_quickly() {
    let mut input = Vec::with_capacity(300_000);
    for _ in 0..100_000 {
        input.extend_from_slice(b"<a>");
    }
    let err = parse_document(&input, ParseOptions::default()).unwrap_err();
    assert!(
        err.message.contains("depth"),
        "expected the depth cap, got: {}",
        err.message
    );
}

/// Unclosed-but-shallow documents are a plain parse error.
#[test]
fn unclosed_document_is_a_parse_error() {
    for input in [
        &b"<a><b>"[..],
        b"<a>",
        b"<a><b></b>",
        b"<",
        b"<a",
        b"<a attr=",
    ] {
        let res = parse_document(input, ParseOptions::default());
        assert!(
            res.is_err(),
            "{:?} must not parse",
            String::from_utf8_lossy(input)
        );
    }
}

/// The `xml.parse` fail-point surfaces as a typed `ParseError` that
/// converts into `FaultKind::Parse`, and parsing recovers once inactive.
#[test]
fn injected_parse_fault_is_typed_and_transient() {
    let input = b"<a><b/></a>";
    tl_fault::failpoints::with_active("xml.parse=always", 0, || {
        let err = parse_document(input, ParseOptions::default()).unwrap_err();
        let fault: tl_fault::Fault = err.into();
        assert_eq!(fault.kind, tl_fault::FaultKind::Parse);
    });
    assert!(parse_document(input, ParseOptions::default()).is_ok());
}
