//! Approximate COUNT answering and interactive query refinement.
//!
//! The paper's second motivating use (§1): return the selectivity estimate
//! directly as an approximate answer to a `COUNT` aggregate, and warn an
//! interactive user when a query would return an overwhelming result set so
//! they can refine it before running it for real.
//!
//! ```text
//! cargo run --release -p treelattice --example approximate_count
//! ```

use tl_datagen::{Dataset, GenConfig};
use tl_twig::MatchCounter;
use treelattice::{BuildConfig, Estimator, TreeLattice};

/// Result-set size above which the "interactive UI" suggests refining.
const OVERWHELMING: f64 = 1_000.0;

fn main() {
    let doc = Dataset::Imdb.generate(GenConfig {
        seed: 7,
        target_elements: 50_000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let counter = MatchCounter::new(&doc);
    println!(
        "movie corpus: {} elements; summary {} KB\n",
        doc.len(),
        lattice.summary_bytes() / 1024
    );

    // An interactive session: the user starts broad and refines, guided by
    // approximate counts that never touch the base data.
    let session = [
        ("movie/cast/actor", "all actor credits"),
        ("movie[cast/actor]", "actor credits, as a branching twig"),
        (
            "movie[cast/actor[role]][genres]",
            "credits with a role, in movies listing genres",
        ),
        (
            "movie[cast/actor[role]][genres/genre][ratings]",
            "...expanded per genre, with ratings",
        ),
    ];
    for (query, intent) in session {
        let est = lattice
            .estimate_query(query, Estimator::RecursiveVoting)
            .expect("query parses");
        let advice = if est > OVERWHELMING {
            "too broad — consider refining"
        } else if est == 0.0 {
            "provably empty — skip execution"
        } else {
            "small enough — execute exactly"
        };
        println!("intent: {intent}\n  query: {query}\n  approx COUNT ~= {est:.0}  [{advice}]");
        let twig = lattice.parse_query(query).expect("query parses");
        let truth = counter.count(&twig);
        let err = if truth > 0 {
            format!("{:.1}%", 100.0 * (est - truth as f64).abs() / truth as f64)
        } else {
            "n/a".to_owned()
        };
        println!("  (exact COUNT = {truth}, estimation error {err})\n");
    }
}
