//! Query-plan ordering with selectivity estimates.
//!
//! The motivating use of twig selectivity estimation (paper §1): a query
//! processor evaluating a complex query with several twig predicates wants
//! to evaluate the most selective predicate first so later predicates
//! filter the fewest candidates. This example builds a TreeLattice summary
//! over an auction corpus, estimates a set of candidate predicates, orders
//! them, and checks the ordering against the true selectivities.
//!
//! ```text
//! cargo run --release -p treelattice --example query_optimizer
//! ```

use tl_datagen::{Dataset, GenConfig};
use tl_twig::MatchCounter;
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn main() {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 2024,
        target_elements: 60_000,
    });
    println!("corpus: {} elements (auction-site stand-in)", doc.len());

    let t0 = std::time::Instant::now();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    println!(
        "summary: {} patterns in {} KB, built in {:?}\n",
        lattice.summary().len(),
        lattice.summary_bytes() / 1024,
        t0.elapsed()
    );

    // Candidate twig predicates of one complex query over auction items.
    let predicates = [
        "item/mailbox/mail[from][to]",
        "item[name][incategory]",
        "open_auction[bidder[increase]][current]",
        "item/description/parlist/listitem",
        "open_auction[itemref][seller][initial]",
    ];

    // Order predicates by estimated selectivity (cheapest first).
    let mut plan: Vec<(&str, f64)> = predicates
        .iter()
        .map(|q| {
            let est = lattice
                .estimate_query(q, Estimator::RecursiveVoting)
                .expect("predicate parses");
            (*q, est)
        })
        .collect();
    plan.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are finite"));

    let counter = MatchCounter::new(&doc);
    println!(
        "{:<45} {:>12} {:>12}",
        "predicate (chosen order)", "estimate", "true"
    );
    let mut true_order_ok = true;
    let mut prev_truth = 0u64;
    for (q, est) in &plan {
        let twig = lattice.parse_query(q).expect("predicate parses");
        let truth = counter.count(&twig);
        if truth < prev_truth {
            true_order_ok = false;
        }
        prev_truth = truth;
        println!("{q:<45} {est:>12.1} {truth:>12}");
    }
    println!(
        "\nplan order agrees with true selectivity order: {}",
        if true_order_ok {
            "yes"
        } else {
            "no (estimation inversion)"
        }
    );
}
