//! Quickstart: parse a document, build a lattice summary, estimate twigs.
//!
//! ```text
//! cargo run --release -p treelattice --example quickstart
//! ```

use tl_twig::count_matches;
use tl_xml::{parse_document, ParseOptions};
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn main() {
    // The paper's Figure 1 document: an online computer catalog.
    let xml = b"<computer>\
                  <laptops>\
                    <laptop><brand/><price/></laptop>\
                    <laptop><brand/><price/></laptop>\
                    <laptop><brand/></laptop>\
                  </laptops>\
                  <desktops>\
                    <desktop><brand/><price/></desktop>\
                  </desktops>\
                </computer>";
    let doc = parse_document(xml, ParseOptions::default()).expect("well-formed XML");
    println!(
        "document: {} elements, {} labels",
        doc.len(),
        doc.labels().len()
    );

    // Build a 3-lattice: exact counts of every twig pattern up to 3 nodes.
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    println!(
        "summary: {} patterns, {} bytes\n",
        lattice.summary().len(),
        lattice.summary_bytes()
    );

    // Estimate a few queries and compare with exact counts.
    let queries = [
        "//laptop[brand][price]", // Figure 1(b)
        "laptops/laptop/brand",
        "computer[laptops][desktops]",
        "laptop[brand][price][nosuchtag]",       // impossible
        "computer/laptops/laptop[brand][price]", // size 5 > k: decomposed
    ];
    println!("{:<45} {:>9} {:>9}", "query", "estimate", "true");
    for q in queries {
        let est = lattice
            .estimate_query(q, Estimator::RecursiveVoting)
            .expect("query parses");
        let twig = lattice.parse_query(q).expect("query parses");
        let truth = count_matches(&doc, &twig);
        println!("{q:<45} {est:>9.2} {truth:>9}");
    }
}
