//! Summary persistence: build once, ship the summary, load at startup.
//!
//! A query optimizer does not re-mine the corpus on every boot; it loads a
//! previously built summary. This example builds a lattice with δ-pruning,
//! serializes it to the versioned binary format, reloads it, and shows the
//! estimates are identical.
//!
//! ```text
//! cargo run --release -p treelattice --example summary_persistence
//! ```

use tl_datagen::{Dataset, GenConfig};
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn main() {
    let doc = Dataset::Nasa.generate(GenConfig {
        seed: 11,
        target_elements: 40_000,
    });

    // Build and prune 0-derivable patterns: smaller artifact, identical
    // estimates (Lemma 5).
    let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let unpruned_bytes = lattice.summary_bytes();
    let report = lattice.prune(0.0);
    println!(
        "summary: {} -> {} bytes after pruning {} of {} derivable patterns",
        unpruned_bytes, report.bytes_after, report.pruned, report.examined
    );

    // Serialize to disk.
    let path = std::env::temp_dir().join("nasa_summary.tlat");
    let bytes = lattice.to_bytes();
    std::fs::write(&path, &bytes).expect("write summary");
    println!("wrote {} bytes to {}", bytes.len(), path.display());

    // ... optimizer restart ...
    let loaded = TreeLattice::from_bytes(&std::fs::read(&path).expect("read summary"))
        .expect("summary parses");
    println!(
        "reloaded: k = {}, {} patterns",
        loaded.k(),
        loaded.summary().len()
    );

    let queries = [
        "dataset/reference/source",
        "dataset[title][identifier]",
        "field[name][units]",
    ];
    for q in queries {
        let before = lattice
            .estimate_query(q, Estimator::RecursiveVoting)
            .unwrap();
        let after = loaded
            .estimate_query(q, Estimator::RecursiveVoting)
            .unwrap();
        assert_eq!(before, after, "round trip must preserve estimates");
        println!("{q:<35} -> {after:.1}");
    }
    println!("estimates identical before and after the round trip");
    let _ = std::fs::remove_file(path);
}
