//! Value predicates: estimating `item[incategory="category3"]`-style
//! queries (the paper's §6 future-work extension).
//!
//! Values become synthetic leaf labels ([`tl_xml::ValueMode`]); a value
//! predicate is then just one more twig edge and the lattice estimates it
//! with the unchanged decomposition machinery. This example compares the
//! exact (`AsLabels`) encoding against hashed buckets of different widths.
//!
//! ```text
//! cargo run --release -p treelattice --example value_predicates
//! ```

use tl_datagen::{Dataset, GenConfig};
use tl_twig::{count_matches, parse_twig_valued};
use tl_xml::ValueMode;
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn main() {
    let cfg = GenConfig {
        seed: 99,
        target_elements: 40_000,
    };
    // Ground truth from the exact value encoding.
    let exact_doc = Dataset::Xmark.generate_valued(cfg, ValueMode::AsLabels);
    let mut exact_labels = exact_doc.labels().clone();
    println!(
        "corpus: {} elements, {} labels under exact value encoding\n",
        exact_doc.len(),
        exact_doc.labels().len()
    );

    let queries = [
        "item[incategory=\"category0\"]",       // popular category
        "item[incategory=\"category15\"]",      // rare category
        "item[name][incategory=\"category2\"]", // structure + value
    ];

    println!(
        "{:<42} {:>8} {:>10} {:>10} {:>10}",
        "query", "true", "exact-enc", "b=4096", "b=64"
    );
    for q in queries {
        let twig = parse_twig_valued(q, &mut exact_labels, ValueMode::AsLabels).unwrap();
        let truth = count_matches(&exact_doc, &twig);

        let mut row = format!("{q:<42} {truth:>8}");
        for mode in [
            ValueMode::AsLabels,
            ValueMode::Bucketed(4096),
            ValueMode::Bucketed(64),
        ] {
            let doc = Dataset::Xmark.generate_valued(cfg, mode);
            let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
            let est = lattice
                .estimate_query_valued(q, mode, Estimator::RecursiveVoting)
                .unwrap();
            row.push_str(&format!(" {est:>10.0}"));
        }
        println!("{row}");
    }
    println!(
        "\nhashed buckets can only merge distinct values, so narrow bucket\n\
         widths overestimate (never underestimate) equality predicates."
    );
}
