//! Chaos suite: drives the deterministic fail-point harness across every
//! site the pipeline defines and asserts the fault-tolerance contract —
//! an injected fault always surfaces as a typed [`Fault`] or a
//! [`Degradation`]-tagged estimate, never as a panic or a silently wrong
//! exact count.

use tl_datagen::{Dataset, GenConfig};
use tl_fault::failpoints::{self, sites};
use tl_workload::{average_relative_error_pct, positive_workload};
use tl_xml::{parse_document, Document, ParseOptions};
use treelattice::{
    Budget, BuildConfig, Degradation, DurabilityPolicy, DurableLattice, DurableOptions,
    EngineConfig, EstimateOptions, EstimationEngine, Estimator, FaultKind, TreeLattice,
};

fn dataset() -> Document {
    Dataset::Xmark.generate(GenConfig {
        seed: 7,
        target_elements: 3000,
    })
}

/// Size-5 queries, so estimation genuinely decomposes (k = 3 lattice) and
/// the budget sites get exercised on the memoization path.
fn twigs_for(doc: &Document, n: usize) -> Vec<tl_twig::Twig> {
    let w = positive_workload(doc, 5, n, 11);
    assert!(w.cases.len() >= n.min(10), "workload came up short");
    w.cases.into_iter().map(|c| c.twig).collect()
}

/// Drives the pipeline path guarded by `site` once, asserting the
/// per-site contract. Runs inside an active fail-point plan; whether the
/// site actually fires depends on the plan's rule, so every assertion
/// covers both the fired and not-fired outcome.
fn drive_site(site: &str, doc: &Document, lattice: &TreeLattice, twig: &tl_twig::Twig) {
    let engine = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let opts = EstimateOptions::default();
    match site {
        "xml.parse" => match parse_document(b"<a><b/></a>", ParseOptions::default()) {
            Ok(doc) => assert!(doc.len() >= 2),
            Err(e) => {
                let fault: treelattice::Fault = e.into();
                assert_eq!(fault.kind, FaultKind::Parse);
            }
        },
        "summary.corrupt" => {
            let bytes = lattice.to_bytes();
            match TreeLattice::from_bytes(&bytes) {
                Ok(roundtrip) => {
                    // Not fired: the round trip must be faithful, never a
                    // silently different summary.
                    assert_eq!(roundtrip.to_bytes(), bytes);
                }
                Err(e) => {
                    let fault: treelattice::Fault = e.into();
                    assert_eq!(fault.kind, FaultKind::CorruptSummary);
                }
            }
        }
        "budget.deadline" | "budget.mem" => {
            let est = lattice.estimate_resilient(twig, Estimator::RecursiveVoting, &opts);
            assert!(est.value.is_finite() && est.value >= 0.0);
            if est.degradation.is_degraded() {
                let cause = est.cause.expect("degraded estimate must carry its cause");
                assert!(
                    matches!(cause.kind, FaultKind::Timeout | FaultKind::BudgetExhausted),
                    "unexpected cause {cause}"
                );
            }
        }
        "engine.worker" => {
            match engine.estimate_resilient(lattice, twig, Estimator::Recursive, &opts) {
                Ok(est) => assert!(est.value.is_finite() && est.value >= 0.0),
                Err(fault) => assert_eq!(fault.kind, FaultKind::WorkerPanic),
            }
        }
        "miner.deadline" => {
            let index = tl_xml::DocIndex::new(doc);
            let (built, stopped) =
                TreeLattice::build_with_report(doc, &index, &BuildConfig::with_k(3), &tl_obs::NOOP);
            match stopped {
                Some(fault) => {
                    assert_eq!(fault.kind, FaultKind::Timeout);
                    assert!(built.k() < 3, "early stop must lower the order");
                }
                None => assert_eq!(built.k(), 3),
            }
            // Either way the summary answers queries without panicking.
            let est = built.estimate_resilient(twig, Estimator::Recursive, &opts);
            assert!(est.value.is_finite() && est.value >= 0.0);
        }
        "wal.append.torn"
        | "wal.append.short"
        | "wal.fsync"
        | "snapshot.before_rename"
        | "snapshot.after_rename" => {
            // The durability contract under injection: an append failure
            // is a typed fault and never an ack; a snapshot failure
            // leaves the WAL authoritative; recovery always lands on
            // exactly the acknowledged prefix.
            let dir = std::env::temp_dir().join(format!(
                "tl-chaos-{}-{}-{}",
                site.replace('.', "-"),
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.subsec_nanos())
            ));
            let opts = DurableOptions {
                policy: DurabilityPolicy::Strict,
                snapshot_every: 1,
                ..DurableOptions::default()
            };
            let mut acked = 0u64;
            {
                let (mut durable, _) =
                    DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
                        .expect("open on a fresh dir never faults");
                for idem in 1..=2u64 {
                    match durable.apply(twig, 5, idem, &tl_obs::NOOP) {
                        Ok(applied) => {
                            acked += 1;
                            assert!(!applied.deduped);
                            if let Some(fault) = applied.snapshot_fault {
                                assert_eq!(fault.kind, FaultKind::CorruptSummary);
                            }
                        }
                        Err(fault) => assert_eq!(fault.kind, FaultKind::CorruptSummary),
                    }
                }
            }
            // Recovery must see every acknowledged update — injection
            // active or not — and must itself be injection-proof here
            // (the sites under test only guard the write path).
            let (recovered, report) =
                DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
                    .expect("recovery after injected write faults");
            assert_eq!(report.last_seq, acked, "recovered prefix != acked prefix");
            assert_eq!(recovered.last_seq(), acked);
            std::fs::remove_dir_all(&dir).ok();
        }
        other => panic!("chaos sweep does not know site `{other}`"),
    }
}

/// The tentpole guarantee, swept exhaustively: every site × rule × seed
/// combination yields a typed fault or a tagged degraded estimate. A
/// panic anywhere fails the test; `with_active` guarantees the plan is
/// dropped even then.
#[test]
fn every_site_and_rule_yields_typed_outcomes_never_a_panic() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let twig = twigs_for(&doc, 1).remove(0);
    for seed in [1u64, 7, 42] {
        for rule in ["always", "nth:2", "1in2"] {
            for site in sites::ALL {
                failpoints::with_active(&format!("{site}={rule}"), seed, || {
                    drive_site(site, &doc, &lattice, &twig);
                });
                assert!(!failpoints::is_active(), "plan leaked past with_active");
            }
        }
    }
}

/// Same seed, same plan, same workload → identical injection decisions.
#[test]
fn injection_is_deterministic_per_seed() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let twigs = twigs_for(&doc, 12);
    let run = |seed: u64| -> Vec<bool> {
        failpoints::with_active("engine.worker=1in3", seed, || {
            let engine = EstimationEngine::new(EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            });
            twigs
                .iter()
                .map(|t| {
                    engine
                        .estimate_resilient(&lattice, t, Estimator::Recursive, &Default::default())
                        .is_err()
                })
                .collect()
        })
    };
    let a = run(9);
    assert_eq!(a, run(9), "same seed must replay identically");
    assert!(a.iter().any(|&x| x), "1in3 over 12 queries never fired");
    assert!(!a.iter().all(|&x| x), "1in3 over 12 queries always fired");
}

/// Satellite: a batch mixing valid queries, an unknown-label query, and
/// one fail-point-induced worker panic returns per-query results with
/// exactly the failing entry typed as an error — and the shared cache
/// stays consistent, answering the identical batch correctly afterwards.
#[test]
fn batch_partial_failure_is_isolated_and_cache_stays_consistent() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let mut twigs = twigs_for(&doc, 6);
    // An alphabet-foreign label: estimates to exactly zero, not an error.
    let mut foreign = lattice.labels().clone();
    let unknown = tl_twig::parse_twig("no_such_label/nowhere", &mut foreign).unwrap();
    twigs.insert(2, unknown);

    let opts = EstimateOptions::default();
    let engine = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    // threads=1 visits queries in order and every worker consults the
    // fail-point on entry, so hit 5 is the valid query at index 4.
    let results = failpoints::with_active("engine.worker=nth:5", 0, || {
        engine.estimate_batch_resilient(&lattice, &twigs, Estimator::RecursiveVoting, &opts)
    });
    assert_eq!(results.len(), twigs.len());
    for (i, result) in results.iter().enumerate() {
        match result {
            Err(fault) => {
                assert_eq!(i, 4, "only the injected query may fail");
                assert_eq!(fault.kind, FaultKind::WorkerPanic);
                assert!(fault.message.contains("injected"), "{}", fault.message);
            }
            Ok(est) => {
                assert_eq!(est.degradation, Degradation::None);
                if i == 2 {
                    assert_eq!(est.value, 0.0, "unknown labels estimate to zero");
                }
            }
        }
    }

    // Cache consistency: the survivor-warmed cache serves the full batch
    // bit-for-bit like a fresh engine once injection stops.
    let after = engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let fresh = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    })
    .estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&after), bits(&fresh));
}

/// With no plan active and an unlimited budget, the resilient paths are
/// bit-for-bit the plain paths, all tagged undegraded.
#[test]
fn resilient_paths_match_plain_paths_when_nothing_fires() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let twigs = twigs_for(&doc, 10);
    let opts = EstimateOptions::default();
    for estimator in Estimator::ALL {
        let engine = EstimationEngine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let plain = engine.estimate_batch(&lattice, &twigs, estimator, &opts);
        let resilient = engine.estimate_batch_resilient(&lattice, &twigs, estimator, &opts);
        for (i, (p, r)) in plain.iter().zip(&resilient).enumerate() {
            let r = r.as_ref().expect("no fault without an active plan");
            assert_eq!(r.value.to_bits(), p.to_bits(), "{estimator}, query {i}");
            assert_eq!(r.degradation, Degradation::None);
        }
    }
}

/// Acceptance gate: forcing the reduced-k rung on the XMark accuracy
/// workload stays within 5x of the undegraded error threshold recorded in
/// `tests/gates/accuracy.json`.
#[test]
fn degraded_xmark_estimates_stay_within_5x_of_the_accuracy_gate() {
    let gate_json = std::fs::read_to_string("../../tests/gates/accuracy.json")
        .expect("accuracy gate file present");
    let gate = tl_obs::Snapshot::from_json(&gate_json).expect("gate file is a tl-metrics snapshot");
    let threshold = *gate
        .gauges
        .get("gate.accuracy.max_mean_error_pct.voting")
        .expect("voting threshold recorded");

    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 42,
        target_elements: 8000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let w = positive_workload(&doc, 5, 30, 42);
    assert!(w.cases.len() >= 20, "workload came up short");
    let truths = w.true_counts();

    // max_k = 3 < query size forces the fix-sized rung at reduced order —
    // deterministic, unlike deadline- or memory-triggered degradation.
    let opts = EstimateOptions {
        budget: Budget::unlimited().with_max_k(3),
        ..EstimateOptions::default()
    };
    let estimates: Vec<f64> = w
        .cases
        .iter()
        .map(|c| {
            let est = lattice.estimate_resilient(&c.twig, Estimator::RecursiveVoting, &opts);
            assert_eq!(
                est.degradation,
                Degradation::ReducedK { k: 3 },
                "size-5 queries under max_k=3 must take the reduced-k rung"
            );
            est.value
        })
        .collect();
    let err = average_relative_error_pct(&truths, &estimates);
    assert!(
        err <= 5.0 * threshold,
        "degraded error {err:.2}% exceeds 5x the gate threshold {threshold:.2}%"
    );
}

/// Full collapse to the Markov rung (an expired deadline) is still total:
/// every estimate exists, is finite, and carries the timeout cause.
#[test]
fn expired_deadline_collapses_to_markov_totally() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let opts = EstimateOptions {
        budget: Budget::unlimited().with_time_limit(std::time::Duration::ZERO),
        ..EstimateOptions::default()
    };
    for twig in twigs_for(&doc, 8) {
        let est = lattice.estimate_resilient(&twig, Estimator::Recursive, &opts);
        assert!(est.value.is_finite() && est.value >= 0.0);
        assert_eq!(est.degradation, Degradation::Markov);
        assert_eq!(
            est.cause.expect("markov fallback carries a cause").kind,
            FaultKind::Timeout
        );
    }
}
