//! Attribution tests for the resilient degradation ladder.
//!
//! The contract under test is stronger than "degraded estimates are
//! finite" (the chaos suite's): the [`Degradation`] tag must name the rung
//! that *actually produced the number*. Every rung has a public clean-path
//! twin — plain `estimate_with` for rung 1, [`treelattice::estimate_fixed_at`]
//! for rung 2, [`treelattice::markov_estimate`] for rung 3 — and the
//! returned value must be bit-for-bit equal to its twin. Where the tag
//! claims an exact answer (`Degradation::None` with `|Q| ≤ k`), the value
//! is additionally cross-checked against the `tl-oracle` ground truth.

use tl_datagen::{random_document, RandomTreeConfig};
use tl_fault::failpoints::{self, sites};
use tl_oracle::Oracle;
use tl_twig::Twig;
use tl_workload::sample::random_occurred_twig;
use tl_xml::Document;
use treelattice::{
    estimate_fixed_at, markov_estimate, Budget, BuildConfig, Degradation, EngineConfig,
    EstimateOptions, EstimationEngine, Estimator, FaultKind, ResilientEstimate, TreeLattice,
};

fn fixture() -> (Document, TreeLattice, Vec<Twig>) {
    let doc = random_document(&RandomTreeConfig {
        seed: 1905,
        nodes: 350,
        labels: 7,
        max_children: 6,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(23);
    let mut twigs = Vec::new();
    for size in [2, 3, 5, 5, 6] {
        if let Some(t) = random_occurred_twig(&doc, &mut rng, size) {
            twigs.push(t);
        }
    }
    assert!(twigs.len() >= 4, "fixture workload came up short");
    (doc, lattice, twigs)
}

/// Asserts that `res.value` is bit-identical to the clean-path computation
/// of the rung its tag names. Must be called with no fail-point plan
/// active, so the twins compute clean.
fn assert_attribution(
    doc: &Document,
    lattice: &TreeLattice,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    res: &ResilientEstimate,
    ctx: &str,
) {
    assert!(
        res.value.is_finite() && res.value >= 0.0,
        "{ctx}: bad value {}",
        res.value
    );
    match res.degradation {
        Degradation::None => {
            let twin = lattice.estimate_with(twig, estimator, opts);
            assert_eq!(
                res.value.to_bits(),
                twin.to_bits(),
                "{ctx}: tag None but value differs from the plain estimator"
            );
            assert!(res.cause.is_none(), "{ctx}: undegraded result has a cause");
            if twig.len() <= lattice.k() {
                // The tag claims the exact rung; at |Q| ≤ k that rung IS
                // exact, so the oracle must agree.
                let truth = Oracle::new(doc).count(twig) as f64;
                assert!(
                    (res.value - truth).abs() <= 1e-9 * truth.max(1.0),
                    "{ctx}: claimed exact but oracle says {truth}, got {}",
                    res.value
                );
            }
        }
        Degradation::ReducedK { k } => {
            assert!(
                (2..lattice.k()).contains(&k) || k == 2,
                "{ctx}: odd k_eff {k}"
            );
            let twin = estimate_fixed_at(lattice.summary(), twig, k, opts);
            assert_eq!(
                res.value.to_bits(),
                twin.to_bits(),
                "{ctx}: tag ReducedK{{{k}}} but value differs from fix-sized at {k}"
            );
        }
        Degradation::Markov => {
            let twin = markov_estimate(lattice.summary(), twig);
            assert_eq!(
                res.value.to_bits(),
                twin.to_bits(),
                "{ctx}: tag Markov but value differs from the closed form"
            );
            assert!(
                res.cause.is_some(),
                "{ctx}: bottom rung reached without a recorded cause"
            );
        }
    }
}

#[test]
fn clean_path_is_attributed_to_rung_one_and_matches_the_oracle() {
    let _guard = failpoints::exclusive();
    let (doc, lattice, twigs) = fixture();
    let opts = EstimateOptions::default();
    for twig in &twigs {
        for est in Estimator::ALL {
            let res = lattice.estimate_resilient(twig, est, &opts);
            assert_eq!(res.degradation, Degradation::None, "{est}");
            assert_attribution(
                &doc,
                &lattice,
                twig,
                est,
                &opts,
                &res,
                &format!("clean/{est}"),
            );
        }
    }
}

#[test]
fn max_k_budget_is_attributed_to_reduced_k() {
    let _guard = failpoints::exclusive();
    let (doc, lattice, twigs) = fixture();
    let opts = EstimateOptions {
        budget: Budget::unlimited().with_max_k(2),
        ..EstimateOptions::default()
    };
    let mut reduced = 0usize;
    for twig in &twigs {
        let res = lattice.estimate_resilient(twig, Estimator::Recursive, &opts);
        if twig.len() > 2 {
            assert_eq!(res.degradation, Degradation::ReducedK { k: 2 }, "{twig:?}");
            reduced += 1;
        }
        assert_attribution(
            &doc,
            &lattice,
            twig,
            Estimator::Recursive,
            &opts,
            &res,
            "max_k=2",
        );
    }
    assert!(reduced >= 3, "cap never engaged");
}

/// Runs `estimate_resilient` under an injection plan, then verifies
/// attribution (and, when given, the expected tag/cause) on the clean
/// path after the plan is gone.
fn drive_injected(
    spec: &str,
    expect_degraded: bool,
    expect_cause: Option<FaultKind>,
) -> Vec<(Twig, ResilientEstimate)> {
    let (doc, lattice, twigs) = fixture();
    let opts = EstimateOptions::default();
    // Size ≥ 5 twigs genuinely decompose on a k=3 lattice, so the budget
    // sites are consulted.
    let big: Vec<Twig> = twigs.iter().filter(|t| t.len() >= 5).cloned().collect();
    assert!(!big.is_empty());
    let results: Vec<(Twig, ResilientEstimate)> = failpoints::with_active(spec, 9, || {
        big.iter()
            .map(|t| {
                (
                    t.clone(),
                    lattice.estimate_resilient(t, Estimator::RecursiveVoting, &opts),
                )
            })
            .collect()
    });
    let _guard = failpoints::exclusive();
    for (twig, res) in &results {
        if expect_degraded {
            assert!(
                res.degradation.is_degraded(),
                "{spec}: injection did not degrade {twig:?}"
            );
        }
        if let Some(kind) = expect_cause {
            if res.degradation.is_degraded() {
                let cause = res.cause.as_ref().expect("degraded result carries cause");
                assert_eq!(cause.kind, kind, "{spec}");
            }
        }
        assert_attribution(
            &doc,
            &lattice,
            twig,
            Estimator::RecursiveVoting,
            &opts,
            res,
            spec,
        );
    }
    results
}

#[test]
fn deadline_always_lands_on_markov_with_timeout_cause() {
    let results = drive_injected("budget.deadline=always", true, Some(FaultKind::Timeout));
    // Every deadline check fires, so rung 2 (also enforced) trips too: the
    // ladder must bottom out at Markov, and the tag must say so.
    for (twig, res) in &results {
        assert_eq!(res.degradation, Degradation::Markov, "{twig:?}");
    }
}

#[test]
fn single_deadline_trip_lands_on_reduced_k() {
    // nth:1 fires exactly once, on the first query's first deadline check:
    // rung 1 faults, rung 2 then runs clean and must be credited — not
    // Markov, not None. Later queries see an exhausted rule and run clean.
    let results = drive_injected("budget.deadline=nth:1", false, Some(FaultKind::Timeout));
    let (twig, first) = &results[0];
    assert!(
        matches!(first.degradation, Degradation::ReducedK { .. }),
        "one trip should stop at rung 2, got {:?} for {twig:?}",
        first.degradation
    );
    for (twig, res) in &results[1..] {
        assert_eq!(
            res.degradation,
            Degradation::None,
            "exhausted rule still degraded {twig:?}"
        );
    }
}

#[test]
fn memory_exhaustion_is_attributed_with_budget_cause() {
    drive_injected("budget.mem=always", true, Some(FaultKind::BudgetExhausted));
}

#[test]
fn engine_worker_panic_is_a_typed_fault_not_a_mislabeled_estimate() {
    let (doc, lattice, twigs) = fixture();
    let opts = EstimateOptions::default();
    let engine = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let twig = &twigs[0];
    let (first, second) = failpoints::with_active("engine.worker=nth:1", 3, || {
        (
            engine.estimate_resilient(&lattice, twig, Estimator::Recursive, &opts),
            engine.estimate_resilient(&lattice, twig, Estimator::Recursive, &opts),
        )
    });
    let _guard = failpoints::exclusive();
    // First call: the injected panic must surface as WorkerPanic — never
    // as a degraded-but-tagged estimate.
    assert_eq!(first.unwrap_err().kind, FaultKind::WorkerPanic);
    // Second call: clean, and fully attributed.
    let res = second.expect("second call runs clean");
    assert_eq!(res.degradation, Degradation::None);
    assert_attribution(
        &doc,
        &lattice,
        twig,
        Estimator::Recursive,
        &opts,
        &res,
        "engine.worker=nth:1 (second call)",
    );
}

#[test]
fn every_injection_site_preserves_attribution_or_types_its_fault() {
    // Sweep all sites with an always-rule: estimation sites must keep the
    // tag-matches-rung contract; pipeline sites must surface their typed
    // fault kind. Either way, nothing panics and nothing is mislabeled.
    let (doc, lattice, twigs) = fixture();
    let opts = EstimateOptions::default();
    let twig = twigs.iter().find(|t| t.len() >= 5).expect("big twig");
    for &site in sites::ALL {
        let spec = format!("{site}=always");
        match site {
            "budget.deadline" | "budget.mem" => {
                let res = failpoints::with_active(&spec, 5, || {
                    lattice.estimate_resilient(twig, Estimator::Recursive, &opts)
                });
                let _guard = failpoints::exclusive();
                assert!(res.degradation.is_degraded(), "{site}");
                assert_attribution(
                    &doc,
                    &lattice,
                    twig,
                    Estimator::Recursive,
                    &opts,
                    &res,
                    &spec,
                );
            }
            "engine.worker" => {
                let engine = EstimationEngine::new(EngineConfig {
                    threads: 1,
                    ..EngineConfig::default()
                });
                let err = failpoints::with_active(&spec, 5, || {
                    engine.estimate_resilient(&lattice, twig, Estimator::Recursive, &opts)
                })
                .unwrap_err();
                assert_eq!(err.kind, FaultKind::WorkerPanic, "{site}");
            }
            "xml.parse" => {
                let err = failpoints::with_active(&spec, 5, || {
                    tl_xml::parse_document(b"<a><b/></a>", tl_xml::ParseOptions::default())
                })
                .unwrap_err();
                let fault: treelattice::Fault = err.into();
                assert_eq!(fault.kind, FaultKind::Parse, "{site}");
            }
            "summary.corrupt" => {
                let bytes = lattice.to_bytes();
                let err = failpoints::with_active(&spec, 5, || TreeLattice::from_bytes(&bytes))
                    .unwrap_err();
                let fault: treelattice::Fault = err.into();
                assert_eq!(fault.kind, FaultKind::CorruptSummary, "{site}");
            }
            "miner.deadline" => {
                // A build under a dying deadline must still produce a
                // lattice whose ladder keeps the attribution contract.
                let degraded = failpoints::with_active(&spec, 5, || {
                    TreeLattice::build(&doc, &BuildConfig::with_k(3))
                });
                let _guard = failpoints::exclusive();
                let res = degraded.estimate_resilient(twig, Estimator::Recursive, &opts);
                assert_attribution(
                    &doc,
                    &degraded,
                    twig,
                    Estimator::Recursive,
                    &opts,
                    &res,
                    &spec,
                );
            }
            "wal.append.torn" | "wal.append.short" | "wal.fsync" => {
                // Durability write sites: an always-firing append path
                // must refuse the ack with a typed CorruptSummary-family
                // fault — never a wrong generation, never a panic.
                let dir = std::env::temp_dir().join(format!(
                    "tl-ladder-{}-{}",
                    site.replace('.', "-"),
                    std::process::id()
                ));
                std::fs::remove_dir_all(&dir).ok();
                let opts = treelattice::DurableOptions {
                    policy: treelattice::DurabilityPolicy::Strict,
                    ..treelattice::DurableOptions::default()
                };
                let (mut durable, _) =
                    treelattice::DurableLattice::open(&dir, Some(&lattice), &opts, &tl_obs::NOOP)
                        .expect("open durable dir");
                let err =
                    failpoints::with_active(&spec, 5, || durable.apply(twig, 9, 1, &tl_obs::NOOP))
                        .unwrap_err();
                assert_eq!(err.kind, FaultKind::CorruptSummary, "{site}");
                std::fs::remove_dir_all(&dir).ok();
            }
            "snapshot.before_rename" | "snapshot.after_rename" => {
                // Snapshot sites: the explicit snapshot call faults typed,
                // and the WAL stays authoritative for recovery.
                let dir = std::env::temp_dir().join(format!(
                    "tl-ladder-{}-{}",
                    site.replace('.', "-"),
                    std::process::id()
                ));
                std::fs::remove_dir_all(&dir).ok();
                let opts = treelattice::DurableOptions::default();
                let (mut durable, _) =
                    treelattice::DurableLattice::open(&dir, Some(&lattice), &opts, &tl_obs::NOOP)
                        .expect("open durable dir");
                durable
                    .apply(twig, 9, 1, &tl_obs::NOOP)
                    .expect("append without injection");
                let err = failpoints::with_active(&spec, 5, || durable.snapshot(&tl_obs::NOOP))
                    .unwrap_err();
                assert_eq!(err.kind, FaultKind::CorruptSummary, "{site}");
                let _guard = failpoints::exclusive();
                let (recovered, report) =
                    treelattice::DurableLattice::open(&dir, Some(&lattice), &opts, &tl_obs::NOOP)
                        .expect("recovery after snapshot fault");
                assert_eq!(report.last_seq, 1, "{site}: acked update lost");
                assert_eq!(recovered.last_seq(), 1);
                std::fs::remove_dir_all(&dir).ok();
            }
            other => panic!("new fail-point site {other} has no ladder coverage"),
        }
    }
}
