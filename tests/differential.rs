//! 3-way differential suite: the `tl-oracle` permanent-expansion counter
//! vs the dense CSR kernel (`MatchCounter`) vs the hash-map reference
//! kernel (`ReferenceMatchCounter`), over seeded random corpora.
//!
//! Three independently formulated exact counters agreeing on hundreds of
//! (document, twig) pairs is the repo's strongest evidence that "exact"
//! means exact. On any disagreement the case is shrunk to a minimal
//! reproducer and printed in full.
//!
//! `TL_ORACLE_SEED` (comma-separated seeds) narrows the run to one CI
//! matrix slot; the default covers the full {1, 7, 42} matrix and the
//! ≥ 500-pair acceptance floor.

use tl_oracle::{
    describe_case, generate, match_is_valid, seeds_from_env, shrink_case, CorpusConfig, Oracle,
};
use tl_twig::{MatchCounter, ReferenceMatchCounter, Twig};
use tl_xml::Document;

const DEFAULT_SEEDS: &[u64] = &[1, 7, 42];

/// Counts `twig` three ways; returns an error naming the dissenter(s).
fn three_way(doc: &Document, twig: &Twig) -> Result<u64, String> {
    let oracle = Oracle::new(doc).count(twig);
    let dense = MatchCounter::new(doc)
        .try_count(twig)
        .map_err(|e| format!("dense kernel rejected a corpus twig: {e:?}"))?;
    let reference = ReferenceMatchCounter::new(doc).count(twig);
    if oracle == dense && dense == reference {
        Ok(oracle)
    } else {
        Err(format!(
            "counters disagree: oracle {oracle}, dense {dense}, reference {reference}"
        ))
    }
}

#[test]
fn three_way_agreement_on_seeded_corpora() {
    let seeds = seeds_from_env("TL_ORACLE_SEED", DEFAULT_SEEDS);
    let mut pairs = 0usize;
    let mut nonzero = 0usize;
    for &seed in &seeds {
        let corpus = generate(&CorpusConfig {
            seed,
            ..CorpusConfig::default()
        });
        for case in &corpus.cases {
            let doc = &corpus.docs[case.doc];
            match three_way(doc, &case.twig) {
                Ok(count) => {
                    pairs += 1;
                    nonzero += usize::from(count > 0);
                }
                Err(msg) => {
                    let (sdoc, stwig) =
                        shrink_case(doc, &case.twig, |d, t| three_way(d, t).is_err());
                    let final_msg = three_way(&sdoc, &stwig).unwrap_err();
                    panic!(
                        "seed {seed}: {msg}\nshrunk to: {final_msg}\n{}",
                        describe_case(&sdoc, &stwig)
                    );
                }
            }
        }
    }
    // Per-seed floor, plus the acceptance-criteria floor when the full
    // default matrix runs in one process.
    assert!(
        pairs >= 170 * seeds.len(),
        "only {pairs} pairs over {} seed(s)",
        seeds.len()
    );
    if seeds == DEFAULT_SEEDS {
        assert!(pairs >= 500, "acceptance floor: {pairs} < 500 pairs");
    }
    // The corpus mixes positives and perturbed twigs; a degenerate all-zero
    // corpus would make agreement vacuous.
    assert!(
        nonzero * 3 >= pairs,
        "suspiciously few non-zero counts: {nonzero}/{pairs}"
    );
}

#[test]
fn enumeration_spot_check_agrees_with_all_counters() {
    // For small counts, explicitly enumerate every match and re-validate
    // each against Definition 1 — this checks the *assumptions* (label,
    // edge, injectivity) the counters encode, not just their totals.
    let seeds = seeds_from_env("TL_ORACLE_SEED", &[DEFAULT_SEEDS[0]]);
    let corpus = generate(&CorpusConfig {
        seed: seeds[0],
        docs: 2,
        twigs_per_doc: 30,
        ..CorpusConfig::default()
    });
    let mut enumerated = 0usize;
    for case in &corpus.cases {
        let doc = &corpus.docs[case.doc];
        let oracle = Oracle::new(doc);
        let Some(matches) = oracle.enumerate_matches(&case.twig, 500) else {
            continue; // more than 500 matches: counted, not enumerated
        };
        enumerated += 1;
        assert_eq!(
            matches.len() as u64,
            oracle.count(&case.twig),
            "enumeration disagrees with the permanent count\n{}",
            describe_case(doc, &case.twig)
        );
        for m in &matches {
            assert!(
                match_is_valid(doc, &case.twig, m),
                "enumerated mapping violates Definition 1\n{}",
                describe_case(doc, &case.twig)
            );
        }
        // Per-root partition: summing rooted counts over candidate roots
        // must reproduce the total.
        let by_root: u64 = doc
            .pre_order()
            .map(|d| oracle.count_rooted_at(&case.twig, d))
            .sum();
        assert_eq!(by_root, matches.len() as u64);
    }
    assert!(enumerated >= 20, "only {enumerated} cases were enumerable");
}
