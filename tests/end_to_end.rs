//! Cross-crate integration tests: generate → mine → estimate → score,
//! on all four dataset stand-ins.

use tl_datagen::{Dataset, GenConfig};
use tl_twig::MatchCounter;
use tl_workload::{average_relative_error_pct, negative_workload, positive_workload};
use treelattice::{BuildConfig, Estimator, TreeLattice};

const SCALE: usize = 3_000;

fn build(ds: Dataset, k: usize) -> (tl_xml::Document, TreeLattice) {
    let doc = ds.generate(GenConfig {
        seed: 1234,
        target_elements: SCALE,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k));
    (doc, lattice)
}

#[test]
fn in_lattice_queries_are_exact_on_every_dataset() {
    for ds in Dataset::ALL {
        let (doc, lattice) = build(ds, 4);
        for size in 1..=4 {
            let w = positive_workload(&doc, size, 15, 5);
            for case in &w.cases {
                for est in Estimator::ALL {
                    assert_eq!(
                        lattice.estimate(&case.twig, est),
                        case.true_count as f64,
                        "{ds}, size {size}, {est}"
                    );
                }
            }
        }
    }
}

#[test]
fn decomposed_estimates_are_reasonable_on_every_dataset() {
    // Queries above the lattice order must decompose; the average error
    // should stay well below a factor of 2 on sizes 5-6 (the paper sees
    // < 50% there).
    for ds in Dataset::ALL {
        let (doc, lattice) = build(ds, 4);
        for size in [5usize, 6] {
            let w = positive_workload(&doc, size, 25, 7);
            assert!(!w.cases.is_empty(), "{ds}: empty workload at size {size}");
            let truths = w.true_counts();
            for est in Estimator::ALL {
                let estimates: Vec<f64> = w
                    .cases
                    .iter()
                    .map(|c| lattice.estimate(&c.twig, est))
                    .collect();
                let err = average_relative_error_pct(&truths, &estimates);
                assert!(
                    err < 100.0,
                    "{ds}, size {size}, {est}: average error {err}%"
                );
            }
        }
    }
}

#[test]
fn negative_queries_mostly_answer_zero() {
    for ds in Dataset::ALL {
        let (doc, lattice) = build(ds, 4);
        let mut total = 0usize;
        let mut zeros = 0usize;
        for size in [4usize, 6, 8] {
            let w = negative_workload(&doc, size, 20, 3);
            for case in &w.cases {
                total += 1;
                if lattice.estimate(&case.twig, Estimator::Recursive) == 0.0 {
                    zeros += 1;
                }
            }
        }
        assert!(total >= 20, "{ds}: too few negative queries generated");
        let rate = zeros as f64 / total as f64;
        assert!(rate >= 0.9, "{ds}: zero rate {rate} below the paper's >90%");
    }
}

#[test]
fn voting_is_at_least_as_accurate_as_plain_recursive_on_average() {
    // Aggregated over datasets and sizes; voting may lose on individual
    // cells but the paper's headline is that it wins overall.
    let mut err_plain = 0.0f64;
    let mut err_vote = 0.0f64;
    let mut cells = 0usize;
    for ds in Dataset::ALL {
        let (doc, lattice) = build(ds, 3);
        for size in [5usize, 6, 7] {
            let w = positive_workload(&doc, size, 20, 11);
            if w.cases.len() < 5 {
                continue;
            }
            let truths = w.true_counts();
            let plain: Vec<f64> = w
                .cases
                .iter()
                .map(|c| lattice.estimate(&c.twig, Estimator::Recursive))
                .collect();
            let vote: Vec<f64> = w
                .cases
                .iter()
                .map(|c| lattice.estimate(&c.twig, Estimator::RecursiveVoting))
                .collect();
            err_plain += average_relative_error_pct(&truths, &plain);
            err_vote += average_relative_error_pct(&truths, &vote);
            cells += 1;
        }
    }
    assert!(cells >= 8);
    assert!(
        err_vote <= err_plain * 1.10,
        "voting {err_vote} should not be much worse than plain {err_plain} overall"
    );
}

#[test]
fn estimates_scale_with_document_size() {
    // Doubling the corpus roughly doubles both truth and estimate for a
    // fixed query (sanity of the whole pipeline, not an exact law).
    let small = Dataset::Psd.generate(GenConfig {
        seed: 5,
        target_elements: 2_000,
    });
    let large = Dataset::Psd.generate(GenConfig {
        seed: 5,
        target_elements: 4_000,
    });
    let lat_small = TreeLattice::build(&small, &BuildConfig::with_k(3));
    let lat_large = TreeLattice::build(&large, &BuildConfig::with_k(3));
    let q = "ProteinEntry[header/uid][organism/source]";
    let e_small = lat_small.estimate_query(q, Estimator::Recursive).unwrap();
    let e_large = lat_large.estimate_query(q, Estimator::Recursive).unwrap();
    assert!(e_small > 0.0);
    let ratio = e_large / e_small;
    assert!(
        ratio > 1.4 && ratio < 2.8,
        "doubling the corpus gave estimate ratio {ratio}"
    );
}

#[test]
fn figure11_contrast_end_to_end() {
    use tl_baselines::{SketchConfig, TreeSketch};
    let doc = tl_datagen::figure11_document();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let sketch = TreeSketch::build(&doc, SketchConfig { budget_bytes: 0 });
    let q = lattice.parse_query("b[c][d]").unwrap();
    let truth = MatchCounter::new(&doc).count(&q) as f64;
    assert_eq!(truth, 4.0);
    assert_eq!(lattice.estimate(&q, Estimator::Recursive), 4.0);
    assert!((sketch.estimate(&q) - 8.0).abs() < 1e-9);
}

#[test]
fn isomorphic_queries_get_identical_estimates_everywhere() {
    let (_, lattice) = build(Dataset::Nasa, 4);
    let pairs = [
        ("dataset[title][identifier]", "dataset[identifier][title]"),
        (
            "dataset[reference/source][keywords/keyword]",
            "dataset[keywords/keyword][reference/source]",
        ),
    ];
    for (q1, q2) in pairs {
        for est in Estimator::ALL {
            let e1 = lattice.estimate_query(q1, est).unwrap();
            let e2 = lattice.estimate_query(q2, est).unwrap();
            assert_eq!(e1, e2, "{est}: {q1} vs {q2}");
        }
    }
}
