//! Integration tests for the batched estimation engine.
//!
//! The engine contract under test:
//! * `estimate_batch` is bit-for-bit identical to a sequential
//!   `TreeLattice::estimate_with` loop, for every estimator and any thread
//!   count, warm or cold cache;
//! * summary mutations (`update_after_edit`, `prune`) invalidate the shared
//!   cache through the generation counter;
//! * one engine serves concurrent batches from multiple OS threads without
//!   data races or cross-talk.

use tl_datagen::{Dataset, GenConfig};
use tl_workload::{negative_workload, positive_workload};
use tl_xml::{append_subtree, parse_document, Document, ParseOptions};
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, TreeLattice,
};

fn dataset() -> Document {
    Dataset::Xmark.generate(GenConfig {
        seed: 7,
        target_elements: 3000,
    })
}

/// A mixed workload with structural overlap: positives at two sizes plus
/// negatives, so the shared cache has something to share.
fn mixed_twigs(doc: &Document) -> Vec<tl_twig::Twig> {
    let mut twigs = Vec::new();
    for (size, n, seed) in [(5, 25, 11), (6, 25, 12)] {
        twigs.extend(
            positive_workload(doc, size, n, seed)
                .cases
                .into_iter()
                .map(|c| c.twig),
        );
    }
    twigs.extend(
        negative_workload(doc, 5, 10, 13)
            .cases
            .into_iter()
            .map(|c| c.twig),
    );
    assert!(twigs.len() >= 40, "workload generation came up short");
    twigs
}

#[test]
fn batch_is_bitwise_equal_to_sequential_for_all_estimators_and_threads() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let twigs = mixed_twigs(&doc);
    let opts = EstimateOptions::default();
    for estimator in Estimator::ALL {
        let expected: Vec<u64> = twigs
            .iter()
            .map(|t| lattice.estimate_with(t, estimator, &opts).to_bits())
            .collect();
        for threads in [1, 4] {
            let engine = EstimationEngine::new(EngineConfig { shards: 8, threads });
            // Cold cache, then warm cache: both must be exact.
            for pass in ["cold", "warm"] {
                let got = engine.estimate_batch(&lattice, &twigs, estimator, &opts);
                assert_eq!(got.len(), twigs.len());
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        expected[i],
                        "{estimator}, threads={threads}, {pass} pass, query {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn update_after_edit_invalidates_the_shared_cache() {
    let base = parse_document(
        b"<r><a><b/><c/></a><a><b/><c/></a><a><b/></a></r>",
        ParseOptions::default(),
    )
    .unwrap();
    let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(3));
    let engine = EstimationEngine::default();
    let opts = EstimateOptions::default();
    let twig = lattice.parse_query("a[b][c]").unwrap();

    let before = engine.estimate(&lattice, &twig, Estimator::Recursive, &opts);
    assert_eq!(before, 2.0);
    let generation_before = lattice.generation();

    // Append another a[b][c] record: the true count becomes 3.
    let record = parse_document(b"<a><b/><c/></a>", ParseOptions::default()).unwrap();
    let edit = append_subtree(&base, base.root(), &record);
    lattice.update_after_edit(&edit.document, &edit.touched);
    assert_ne!(lattice.generation(), generation_before);

    let after = engine.estimate(&lattice, &twig, Estimator::Recursive, &opts);
    assert_eq!(after, 3.0, "stale cached estimate served after an edit");
}

#[test]
fn prune_invalidates_the_shared_cache() {
    let doc = dataset();
    let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::default();
    let opts = EstimateOptions::default();
    let twigs = mixed_twigs(&doc);

    // Warm the cache on the unpruned summary.
    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    lattice.prune(0.05);

    // Every post-prune engine answer must match a fresh per-query run
    // against the pruned summary.
    let got = engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    for (i, twig) in twigs.iter().enumerate() {
        let direct = lattice.estimate_with(twig, Estimator::RecursiveVoting, &opts);
        assert_eq!(got[i].to_bits(), direct.to_bits(), "query {i}");
    }
}

#[test]
fn concurrent_batches_share_one_engine_race_free() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::new(EngineConfig {
        shards: 4,
        threads: 4,
    });
    let opts = EstimateOptions::default();
    let twigs_a = mixed_twigs(&doc);
    let twigs_b: Vec<tl_twig::Twig> = positive_workload(&doc, 6, 30, 99)
        .cases
        .into_iter()
        .map(|c| c.twig)
        .collect();
    let expected_a: Vec<u64> = twigs_a
        .iter()
        .map(|t| {
            lattice
                .estimate_with(t, Estimator::Recursive, &opts)
                .to_bits()
        })
        .collect();
    let expected_b: Vec<u64> = twigs_b
        .iter()
        .map(|t| {
            lattice
                .estimate_with(t, Estimator::Recursive, &opts)
                .to_bits()
        })
        .collect();

    std::thread::scope(|scope| {
        let run_a =
            scope.spawn(|| engine.estimate_batch(&lattice, &twigs_a, Estimator::Recursive, &opts));
        let run_b =
            scope.spawn(|| engine.estimate_batch(&lattice, &twigs_b, Estimator::Recursive, &opts));
        let got_a = run_a.join().unwrap();
        let got_b = run_b.join().unwrap();
        for (i, v) in got_a.iter().enumerate() {
            assert_eq!(v.to_bits(), expected_a[i], "batch A query {i}");
        }
        for (i, v) in got_b.iter().enumerate() {
            assert_eq!(v.to_bits(), expected_b[i], "batch B query {i}");
        }
    });
}

#[test]
fn stats_report_hits_entries_and_batch_time() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::new(EngineConfig {
        shards: 8,
        threads: 2,
    });
    let opts = EstimateOptions::default();
    let twigs = mixed_twigs(&doc);

    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let cold = engine.stats();
    assert!(cold.misses > 0, "cold batch must compute entries");
    assert!(cold.entries > 0);
    assert!(cold.bytes > 0);

    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let warm = engine.stats();
    assert!(warm.hits > cold.hits, "warm batch must hit the cache");
    assert!(warm.hit_rate() > 0.0);

    engine.clear();
    assert_eq!(engine.stats().entries, 0);
}
