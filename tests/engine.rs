//! Integration tests for the batched estimation engine.
//!
//! The engine contract under test:
//! * `estimate_batch` is bit-for-bit identical to a sequential
//!   `TreeLattice::estimate_with` loop, for every estimator and any thread
//!   count, warm or cold cache;
//! * summary mutations (`update_after_edit`, `prune`) invalidate the shared
//!   cache through the generation counter;
//! * one engine serves concurrent batches from multiple OS threads without
//!   data races or cross-talk.

use tl_datagen::{Dataset, GenConfig};
use tl_workload::{negative_workload, positive_workload};
use tl_xml::{append_subtree, parse_document, Document, ParseOptions};
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, ReferenceEngine,
    TreeLattice,
};

fn dataset() -> Document {
    Dataset::Xmark.generate(GenConfig {
        seed: 7,
        target_elements: 3000,
    })
}

/// A mixed workload with structural overlap: positives at two sizes plus
/// negatives, so the shared cache has something to share.
fn mixed_twigs(doc: &Document) -> Vec<tl_twig::Twig> {
    let mut twigs = Vec::new();
    for (size, n, seed) in [(5, 25, 11), (6, 25, 12)] {
        twigs.extend(
            positive_workload(doc, size, n, seed)
                .cases
                .into_iter()
                .map(|c| c.twig),
        );
    }
    twigs.extend(
        negative_workload(doc, 5, 10, 13)
            .cases
            .into_iter()
            .map(|c| c.twig),
    );
    assert!(twigs.len() >= 40, "workload generation came up short");
    twigs
}

#[test]
fn batch_is_bitwise_equal_to_sequential_for_all_estimators_and_threads() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let twigs = mixed_twigs(&doc);
    let opts = EstimateOptions::default();
    for estimator in Estimator::ALL {
        let expected: Vec<u64> = twigs
            .iter()
            .map(|t| lattice.estimate_with(t, estimator, &opts).to_bits())
            .collect();
        for threads in [1, 4] {
            let engine = EstimationEngine::new(EngineConfig { shards: 8, threads });
            // Cold cache, then warm cache: both must be exact.
            for pass in ["cold", "warm"] {
                let got = engine.estimate_batch(&lattice, &twigs, estimator, &opts);
                assert_eq!(got.len(), twigs.len());
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        expected[i],
                        "{estimator}, threads={threads}, {pass} pass, query {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn update_after_edit_invalidates_the_shared_cache() {
    let base = parse_document(
        b"<r><a><b/><c/></a><a><b/><c/></a><a><b/></a></r>",
        ParseOptions::default(),
    )
    .unwrap();
    let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(3));
    let engine = EstimationEngine::default();
    let opts = EstimateOptions::default();
    let twig = lattice.parse_query("a[b][c]").unwrap();

    let before = engine.estimate(&lattice, &twig, Estimator::Recursive, &opts);
    assert_eq!(before, 2.0);
    let generation_before = lattice.generation();

    // Append another a[b][c] record: the true count becomes 3.
    let record = parse_document(b"<a><b/><c/></a>", ParseOptions::default()).unwrap();
    let edit = append_subtree(&base, base.root(), &record);
    lattice.update_after_edit(&edit.document, &edit.touched);
    assert_ne!(lattice.generation(), generation_before);

    let after = engine.estimate(&lattice, &twig, Estimator::Recursive, &opts);
    assert_eq!(after, 3.0, "stale cached estimate served after an edit");
}

#[test]
fn prune_invalidates_the_shared_cache() {
    let doc = dataset();
    let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::default();
    let opts = EstimateOptions::default();
    let twigs = mixed_twigs(&doc);

    // Warm the cache on the unpruned summary.
    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    lattice.prune(0.05);

    // Every post-prune engine answer must match a fresh per-query run
    // against the pruned summary.
    let got = engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    for (i, twig) in twigs.iter().enumerate() {
        let direct = lattice.estimate_with(twig, Estimator::RecursiveVoting, &opts);
        assert_eq!(got[i].to_bits(), direct.to_bits(), "query {i}");
    }
}

#[test]
fn concurrent_batches_share_one_engine_race_free() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::new(EngineConfig {
        shards: 4,
        threads: 4,
    });
    let opts = EstimateOptions::default();
    let twigs_a = mixed_twigs(&doc);
    let twigs_b: Vec<tl_twig::Twig> = positive_workload(&doc, 6, 30, 99)
        .cases
        .into_iter()
        .map(|c| c.twig)
        .collect();
    let expected_a: Vec<u64> = twigs_a
        .iter()
        .map(|t| {
            lattice
                .estimate_with(t, Estimator::Recursive, &opts)
                .to_bits()
        })
        .collect();
    let expected_b: Vec<u64> = twigs_b
        .iter()
        .map(|t| {
            lattice
                .estimate_with(t, Estimator::Recursive, &opts)
                .to_bits()
        })
        .collect();

    std::thread::scope(|scope| {
        let run_a =
            scope.spawn(|| engine.estimate_batch(&lattice, &twigs_a, Estimator::Recursive, &opts));
        let run_b =
            scope.spawn(|| engine.estimate_batch(&lattice, &twigs_b, Estimator::Recursive, &opts));
        let got_a = run_a.join().unwrap();
        let got_b = run_b.join().unwrap();
        for (i, v) in got_a.iter().enumerate() {
            assert_eq!(v.to_bits(), expected_a[i], "batch A query {i}");
        }
        for (i, v) in got_b.iter().enumerate() {
            assert_eq!(v.to_bits(), expected_b[i], "batch B query {i}");
        }
    });
}

#[test]
fn stats_report_hits_entries_and_batch_time() {
    let doc = dataset();
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let engine = EstimationEngine::new(EngineConfig {
        shards: 8,
        threads: 2,
    });
    let opts = EstimateOptions::default();
    let twigs = mixed_twigs(&doc);

    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let cold = engine.stats();
    assert!(cold.misses > 0, "cold batch must compute entries");
    assert!(cold.entries > 0);
    assert!(cold.bytes > 0);

    engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let warm = engine.stats();
    assert!(warm.hits > cold.hits, "warm batch must hit the cache");
    assert!(warm.hit_rate() > 0.0);

    engine.clear();
    assert_eq!(engine.stats().entries, 0);
}

/// Satellite property: the shared cache is transparent under arbitrary
/// interleavings of estimates and summary mutations. Whatever sequence of
/// edits and prunes the lattice goes through, an engine answer (cold or
/// warm) is bit-identical to a fresh uncached `estimate_with` against the
/// lattice's current summary — the generation counter may never serve a
/// stale entry.
mod cache_generation_properties {
    use super::*;
    use proptest::prelude::*;
    use tl_xml::{remove_subtree, DocumentBuilder, LabelId, NodeId};

    /// Node i hangs off `spec[i].0 % i` with label `l<spec[i].1>`.
    type TreeSpec = Vec<(u32, u8)>;

    fn arb_tree(max_nodes: usize, labels: u8) -> impl Strategy<Value = TreeSpec> {
        prop::collection::vec((any::<u32>(), 0..labels), 1..max_nodes)
    }

    fn build_doc(spec: &TreeSpec) -> Document {
        let n = spec.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(p, _)) in spec.iter().enumerate().skip(1) {
            children[(p as usize) % i].push(i);
        }
        let mut b = DocumentBuilder::new();
        let mut stack = vec![(0usize, false)];
        while let Some((i, entered)) = stack.pop() {
            if entered {
                b.end();
                continue;
            }
            b.begin(&format!("l{}", spec[i].1));
            stack.push((i, true));
            for &c in children[i].iter().rev() {
                stack.push((c, false));
            }
        }
        b.finish().expect("spec builds a single tree")
    }

    fn build_twig(spec: &TreeSpec, doc: &Document) -> tl_twig::Twig {
        let n_labels = doc.labels().len() as u32;
        let label = |raw: u8| LabelId(u32::from(raw) % n_labels.max(1));
        let mut t = tl_twig::Twig::single(label(spec[0].1));
        let mut ids = vec![0u32; spec.len()];
        for (i, &(p, l)) in spec.iter().enumerate().skip(1) {
            ids[i] = t.add_child(ids[(p as usize) % i], label(l));
        }
        t.normalized()
    }

    /// One step of the interleaving: mutate or no-op, then verify every
    /// (twig, estimator) engine answer twice (cold miss, then warm hit).
    #[derive(Debug, Clone)]
    enum Op {
        /// Append a small record under node `at % len`.
        Append(TreeSpec, u32),
        /// Remove the subtree at non-root node `1 + (at % (len - 1))`.
        Remove(u32),
        /// Prune with the given delta.
        Prune(f64),
        /// No mutation: re-check only (exercises the warm path further).
        Check,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (arb_tree(5, 3), any::<u32>()).prop_map(|(s, at)| Op::Append(s, at)),
            any::<u32>().prop_map(Op::Remove),
            prop_oneof![Just(0.0), Just(0.05), Just(0.2)].prop_map(Op::Prune),
            Just(Op::Check),
        ]
    }

    fn assert_engine_transparent(
        engine: &EstimationEngine,
        reference: &ReferenceEngine,
        lattice: &TreeLattice,
        twigs: &[tl_twig::Twig],
        step: usize,
    ) -> Result<(), TestCaseError> {
        let opts = EstimateOptions::default();
        for est in Estimator::ALL {
            for (i, twig) in twigs.iter().enumerate() {
                let fresh = lattice.estimate_with(twig, est, &opts).to_bits();
                for pass in ["cold", "warm"] {
                    let got = engine.estimate(lattice, twig, est, &opts).to_bits();
                    prop_assert_eq!(
                        got,
                        fresh,
                        "step {}, {}, twig {}, {} pass served a stale estimate",
                        step,
                        est,
                        i,
                        pass
                    );
                }
                // The interned-id engine must also agree bit-for-bit with
                // the byte-keyed reference architecture under the same
                // interleaving of estimates and mutations.
                let byte_keyed = reference.estimate(lattice, twig, est, &opts).to_bits();
                prop_assert_eq!(
                    byte_keyed,
                    fresh,
                    "step {}, {}, twig {}: reference engine diverged",
                    step,
                    est,
                    i
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn interleaved_mutations_never_serve_stale_cache_entries(
            doc_spec in arb_tree(30, 3),
            twig_specs in prop::collection::vec(arb_tree(5, 3), 2..5),
            ops in prop::collection::vec(arb_op(), 1..7),
        ) {
            let mut doc = build_doc(&doc_spec);
            let twigs: Vec<tl_twig::Twig> =
                twig_specs.iter().map(|s| build_twig(s, &doc)).collect();
            let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
            // One engine for the whole run: its cache must survive every
            // mutation only through generation-tagged invalidation. The
            // byte-keyed reference engine rides along as the differential
            // baseline for the interned-id architecture.
            let engine = EstimationEngine::new(EngineConfig { shards: 4, threads: 1 });
            let reference = ReferenceEngine::new();

            assert_engine_transparent(&engine, &reference, &lattice, &twigs, 0)?;
            // `update_after_edit` requires an unpruned summary (the API
            // contract is "prune after updates"), so edits stop once a
            // prune has happened.
            let mut pruned = false;
            for (step, op) in ops.iter().enumerate() {
                match op {
                    Op::Append(record_spec, at) if !pruned => {
                        let record = build_doc(record_spec);
                        let parent = NodeId(at % doc.len() as u32);
                        let edit = append_subtree(&doc, parent, &record);
                        lattice.update_after_edit(&edit.document, &edit.touched);
                        doc = edit.document;
                    }
                    Op::Remove(at) if !pruned => {
                        if doc.len() > 1 {
                            let victim = NodeId(1 + at % (doc.len() as u32 - 1));
                            let edit = remove_subtree(&doc, victim);
                            lattice.update_after_edit(&edit.document, &edit.touched);
                            doc = edit.document;
                        }
                    }
                    Op::Prune(delta) => {
                        lattice.prune(*delta);
                        pruned = true;
                    }
                    Op::Append(..) | Op::Remove(_) | Op::Check => {}
                }
                assert_engine_transparent(&engine, &reference, &lattice, &twigs, step + 1)?;
            }
        }
    }
}

/// Satellite property: canonical-encoding interning round-trips — dense
/// first-sighting ids, byte-exact resolution, zero clone bytes on warm
/// probes, and duplicate encodings collapsing onto one id.
mod interner_properties {
    use proptest::prelude::*;
    use tl_twig::canonical::key_of;
    use tl_twig::{Twig, TwigInterner};
    use tl_xml::LabelId;

    /// Node i hangs off `spec[i].0 % i` with label id `spec[i].1`.
    fn build_twig(spec: &[(u32, u8)]) -> Twig {
        let mut t = Twig::single(LabelId(u32::from(spec[0].1)));
        let mut ids = vec![0u32; spec.len()];
        for (i, &(p, l)) in spec.iter().enumerate().skip(1) {
            ids[i] = t.add_child(ids[(p as usize) % i], LabelId(u32::from(l)));
        }
        t
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn interning_round_trips_and_warm_probes_are_free(
            specs in prop::collection::vec(
                prop::collection::vec((any::<u32>(), 0..6u8), 1..8),
                1..20,
            ),
        ) {
            let mut interner = TwigInterner::new();
            let keys: Vec<_> = specs.iter().map(|s| key_of(&build_twig(s))).collect();
            let ids: Vec<_> = keys
                .iter()
                .map(|k| interner.intern_bytes(k.as_bytes()).0)
                .collect();
            for (k, &id) in keys.iter().zip(&ids) {
                // Round-trip: resolve returns the exact encoding bytes...
                prop_assert_eq!(interner.resolve(id).as_bytes(), k.as_bytes());
                // ...and decoding stays in the same isomorphism class.
                prop_assert_eq!(&key_of(&interner.resolve(id).decode()), k);
                // Re-interning is stable and clones zero key bytes.
                let (again, cloned) = interner.intern_bytes(k.as_bytes());
                prop_assert_eq!(again, id);
                prop_assert_eq!(cloned, 0);
                prop_assert_eq!(interner.get(k.as_bytes()), Some(id));
            }
            // Distinct encodings get distinct ids; duplicates collapse.
            let distinct: std::collections::HashSet<&[u8]> =
                keys.iter().map(|k| k.as_bytes()).collect();
            prop_assert_eq!(interner.len(), distinct.len());
            let mut unique_ids = ids.clone();
            unique_ids.sort_unstable();
            unique_ids.dedup();
            prop_assert_eq!(unique_ids.len(), distinct.len());
        }
    }
}
