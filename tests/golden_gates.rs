//! In-tree enforcement of the golden accuracy store: `cargo test` fails
//! when the current build regresses past the committed q-error/MRE
//! envelopes in `tests/gates/golden_accuracy.json`.
//!
//! The full seed matrix runs in CI via the `gate_golden` binary (release
//! build, one seed per matrix slot). This debug-mode test defaults to the
//! single seed 42 to keep `cargo test -q` fast; `TL_GOLDEN_SEED` selects
//! others.

use tl_bench::golden::{self, GoldenConfig};
use tl_bench::{gates, workspace_root};
use tl_oracle::seeds_from_env;

#[test]
fn committed_golden_envelopes_hold_on_this_build() {
    let path = workspace_root().join("tests/gates/golden_accuracy.json");
    let thresholds = gates::load_snapshot(&path).expect("committed golden thresholds load");

    let seeds = seeds_from_env("TL_GOLDEN_SEED", &[42]);
    let cfg = GoldenConfig {
        seeds,
        ..GoldenConfig::default()
    };
    let measured = golden::measure_golden(&cfg);
    // 4 datasets × |seeds| × 4 estimators.
    assert_eq!(measured.envelopes.len(), 16 * cfg.seeds.len());

    let report = golden::check_golden(&measured, &thresholds);
    assert!(
        report.passed(),
        "golden accuracy regression:\n{}",
        report.failures.join("\n")
    );
    assert_eq!(
        report.lines.len(),
        32 * cfg.seeds.len(),
        "every measured cell must have been compared"
    );
}

#[test]
fn committed_thresholds_cover_the_full_matrix() {
    // The store must carry both gauges for every (dataset, seed,
    // estimator) cell of the default config — a hand-edited file that
    // drops cells would otherwise silently shrink coverage (single-seed CI
    // slots only check their own subset).
    let path = workspace_root().join("tests/gates/golden_accuracy.json");
    let thresholds = gates::load_snapshot(&path).expect("committed golden thresholds load");
    let cfg = GoldenConfig::default();
    let mut missing = Vec::new();
    for ds in tl_datagen::Dataset::ALL {
        for &seed in &cfg.seeds {
            for est in treelattice::Estimator::ALL {
                for metric in ["max_qerror", "mre_pct"] {
                    let key = format!(
                        "{}.{}.s{seed}.{}.{metric}",
                        golden::GOLDEN_PREFIX,
                        ds.name(),
                        est.name()
                    );
                    if !thresholds.gauges.contains_key(&key) {
                        missing.push(key);
                    }
                }
            }
        }
    }
    assert!(missing.is_empty(), "store lacks gauges: {missing:?}");
    assert_eq!(
        thresholds.meta.get("gate").map(String::as_str),
        Some("golden-accuracy")
    );
}
