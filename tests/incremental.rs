//! Incremental maintenance: edits to the document keep the summary exact,
//! at a fraction of a full rebuild's work.

use proptest::prelude::*;
use tl_xml::{append_subtree, remove_subtree, Document, DocumentBuilder, NodeId};
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn build_doc(spec: &[(u32, u8)]) -> Document {
    let n = spec.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(p, _)) in spec.iter().enumerate().skip(1) {
        children[(p as usize) % i].push(i);
    }
    let mut b = DocumentBuilder::new();
    enum Ev {
        Enter(usize),
        Exit,
    }
    let mut stack = vec![Ev::Enter(0)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(i) => {
                b.begin(&format!("l{}", spec[i].1));
                stack.push(Ev::Exit);
                for &c in children[i].iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit => b.end(),
        }
    }
    b.finish().expect("tree spec builds")
}

fn assert_equivalent(a: &TreeLattice, b: &TreeLattice) {
    assert_eq!(a.summary().len(), b.summary().len());
    for (key, count) in a.summary().iter() {
        assert_eq!(b.summary().stored(key), Some(count), "count mismatch");
    }
}

#[test]
fn append_then_update_equals_rebuild() {
    let mut body = String::from("<r>");
    for _ in 0..20 {
        body.push_str("<rec><id/><name/><tags><tag/><tag/></tags></rec>");
    }
    body.push_str("</r>");
    let base = tl_xml::parse_document(body.as_bytes(), tl_xml::ParseOptions::default()).unwrap();
    let record = tl_xml::parse_document(
        b"<rec><id/><name/><photo><url/></photo></rec>",
        tl_xml::ParseOptions::default(),
    )
    .unwrap();
    let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(4));
    let edit = append_subtree(&base, base.root(), &record);
    let report = lattice.update_after_edit(&edit.document, &edit.touched);
    let rebuilt = TreeLattice::build(&edit.document, &BuildConfig::with_k(4));
    assert_equivalent(&lattice, &rebuilt);
    assert!(report.recounted > 0);
    // New structure is queryable immediately.
    let est = lattice
        .estimate_query("rec/photo/url", Estimator::Recursive)
        .unwrap();
    assert_eq!(est, 1.0);
}

#[test]
fn disjoint_append_mostly_reuses() {
    let mut body = String::from("<r>");
    for _ in 0..15 {
        body.push_str("<a><b><c/></b><d/></a>");
    }
    body.push_str("</r>");
    let base = tl_xml::parse_document(body.as_bytes(), tl_xml::ParseOptions::default()).unwrap();
    let record =
        tl_xml::parse_document(b"<z><w/><w/></z>", tl_xml::ParseOptions::default()).unwrap();
    let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(4));
    let edit = append_subtree(&base, base.root(), &record);
    let report = lattice.update_after_edit(&edit.document, &edit.touched);
    assert!(
        report.reused > report.recounted,
        "a disjoint record should reuse more counts than it recomputes: {report:?}"
    );
    assert_equivalent(
        &lattice,
        &TreeLattice::build(&edit.document, &BuildConfig::with_k(4)),
    );
}

#[test]
#[should_panic(expected = "unpruned summary")]
fn update_rejects_pruned_summaries() {
    let base = tl_xml::parse_document(
        b"<r><a><b/></a><a><b/></a></r>",
        tl_xml::ParseOptions::default(),
    )
    .unwrap();
    let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(3));
    lattice.prune(0.0);
    let record = tl_xml::parse_document(b"<a><b/></a>", tl_xml::ParseOptions::default()).unwrap();
    let edit = append_subtree(&base, base.root(), &record);
    let _ = lattice.update_after_edit(&edit.document, &edit.touched);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Appending a random record to a random document: incremental update
    /// equals a rebuild.
    #[test]
    fn random_append_equals_rebuild(
        doc_spec in prop::collection::vec((any::<u32>(), 0..4u8), 2..30),
        rec_spec in prop::collection::vec((any::<u32>(), 0..5u8), 1..8),
        parent_choice in any::<u32>(),
    ) {
        let base = build_doc(&doc_spec);
        let record = build_doc(&rec_spec);
        let parent = NodeId(parent_choice % base.len() as u32);
        let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(3));
        let edit = append_subtree(&base, parent, &record);
        lattice.update_after_edit(&edit.document, &edit.touched);
        let rebuilt = TreeLattice::build(&edit.document, &BuildConfig::with_k(3));
        prop_assert_eq!(lattice.summary().len(), rebuilt.summary().len());
        for (key, count) in rebuilt.summary().iter() {
            prop_assert_eq!(lattice.summary().stored(key), Some(count));
        }
    }

    /// Removing a random non-root subtree: incremental equals rebuild.
    #[test]
    fn random_removal_equals_rebuild(
        doc_spec in prop::collection::vec((any::<u32>(), 0..4u8), 3..30),
        victim_choice in any::<u32>(),
    ) {
        let base = build_doc(&doc_spec);
        let victim = NodeId(1 + victim_choice % (base.len() as u32 - 1));
        let mut lattice = TreeLattice::build(&base, &BuildConfig::with_k(3));
        let edit = remove_subtree(&base, victim);
        lattice.update_after_edit(&edit.document, &edit.touched);
        let rebuilt = TreeLattice::build(&edit.document, &BuildConfig::with_k(3));
        prop_assert_eq!(lattice.summary().len(), rebuilt.summary().len());
        for (key, count) in rebuilt.summary().iter() {
            prop_assert_eq!(lattice.summary().stored(key), Some(count));
        }
    }
}
