//! Lemma 4: on path queries, both decomposition estimators coincide with
//! the order-(k−1) Markov-table path estimator.
//!
//! This is the paper's subsumption result, checked numerically: a
//! TreeLattice with a k-lattice and an independently implemented Markov
//! table of order k produce identical estimates for every downward label
//! path, across documents and lattice orders.

use tl_baselines::MarkovTable;
use tl_datagen::{Dataset, GenConfig};
use tl_twig::Twig;
use tl_xml::{Document, LabelId};
use treelattice::{BuildConfig, Estimator, TreeLattice};

/// Collects downward label paths of length `len` occurring in `doc`.
fn occurred_paths(doc: &Document, len: usize, limit: usize) -> Vec<Vec<LabelId>> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for v in doc.pre_order() {
        // Walk up: the path of `len` labels ending at v.
        let mut labels = Vec::with_capacity(len);
        let mut cur = v;
        labels.push(doc.label(cur));
        while labels.len() < len {
            match doc.parent(cur) {
                Some(p) => {
                    labels.push(doc.label(p));
                    cur = p;
                }
                None => break,
            }
        }
        if labels.len() == len {
            labels.reverse();
            if seen.insert(labels.clone()) {
                out.push(labels);
                if out.len() >= limit {
                    break;
                }
            }
        }
    }
    out
}

fn check_dataset(ds: Dataset, k: usize) {
    let doc = ds.generate(GenConfig {
        seed: 99,
        target_elements: 2_500,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k));
    let markov = MarkovTable::build(&doc, k);
    let mut checked = 0usize;
    for len in (k + 1)..=(k + 4) {
        for path in occurred_paths(&doc, len, 40) {
            let twig = Twig::path(&path);
            let expected = markov.estimate_path(&path);
            for est in [Estimator::Recursive, Estimator::FixSized] {
                let got = lattice.estimate(&twig, est);
                assert!(
                    (got - expected).abs() <= 1e-6 * expected.abs().max(1.0),
                    "{ds}, k={k}, len={len}, {est}: lattice {got} vs markov {expected}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 20, "{ds}, k={k}: only {checked} paths checked");
}

#[test]
fn lemma4_holds_on_nasa_k3() {
    check_dataset(Dataset::Nasa, 3);
}

#[test]
fn lemma4_holds_on_psd_k2() {
    check_dataset(Dataset::Psd, 2);
}

#[test]
fn lemma4_holds_on_xmark_k3() {
    check_dataset(Dataset::Xmark, 3);
}

#[test]
fn lemma4_holds_on_imdb_k2() {
    check_dataset(Dataset::Imdb, 2);
}

/// The path stored in the lattice and in the Markov table agree exactly
/// (both are exact counts) for lengths ≤ k — the base case of Lemma 4.
#[test]
fn stored_paths_agree_exactly() {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 4,
        target_elements: 2_000,
    });
    let k = 4;
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k));
    let markov = MarkovTable::build(&doc, k);
    for len in 1..=k {
        for path in occurred_paths(&doc, len, 30) {
            let twig = Twig::path(&path);
            let a = lattice.estimate(&twig, Estimator::Recursive);
            let b = markov.estimate_path(&path);
            assert_eq!(a, b, "stored path disagreement at length {len}");
        }
    }
}

/// Voting also reduces to the Markov estimate on *pure chains of distinct
/// labels*: every decomposition pair choice yields the same value, so the
/// average equals it. (With repeated labels different pairs can disagree,
/// which is exactly why voting exists — so this test uses sampled paths
/// whose estimates already coincide between the two plain estimators.)
#[test]
fn voting_agrees_on_paths_where_plain_estimators_agree() {
    let doc = Dataset::Nasa.generate(GenConfig {
        seed: 17,
        target_elements: 2_000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    for path in occurred_paths(&doc, 5, 40) {
        let twig = Twig::path(&path);
        let rec = lattice.estimate(&twig, Estimator::Recursive);
        let fix = lattice.estimate(&twig, Estimator::FixSized);
        if (rec - fix).abs() > 1e-9 {
            continue;
        }
        let vote = lattice.estimate(&twig, Estimator::RecursiveVoting);
        assert!(
            (vote - rec).abs() <= 1e-6 * rec.abs().max(1.0),
            "voting {vote} differs from plain {rec} on a path"
        );
    }
}
