//! Property tests for the summary merge monoid.
//!
//! The sharded corpus miner relies on three algebraic facts:
//!
//! * [`Summary::empty`] is a two-sided identity for [`Summary::merge`];
//! * merging is commutative and associative — in the stored counts always,
//!   and **up to δ-re-pruning** when a pruning pass runs once after the
//!   final merge (pruning itself does not commute with merging);
//! * sharding a corpus and merging the per-shard lattices serializes
//!   bit-identically to mining the whole corpus sequentially, for every
//!   shard and thread count.
//!
//! Lattices merged across *different* label universes are compared by a
//! label-name fingerprint (canonical keys embed label ids, which legitimately
//! differ between merge orders), while same-universe checks compare raw key
//! bytes.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tl_datagen::{Dataset, GenConfig};
use tl_xml::{Document, DocumentBuilder};
use treelattice::{BuildConfig, CorpusConfig, Summary, TreeLattice};

/// Raw tree description: node i has parent `spec[i].0 % i` (node 0 is the
/// root) and label `l<offset + spec[i].1>`.
type TreeSpec = Vec<(u32, u8)>;

fn arb_tree(max_nodes: usize, labels: u8) -> impl Strategy<Value = TreeSpec> {
    prop::collection::vec((any::<u32>(), 0..labels), 1..max_nodes)
}

/// Builds a document from a tree spec. `offset` shifts the label alphabet
/// so different documents get overlapping-but-distinct label universes.
fn build_doc(spec: &TreeSpec, offset: u8) -> Document {
    let n = spec.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(p, _)) in spec.iter().enumerate().skip(1) {
        children[(p as usize) % i].push(i);
    }
    let mut b = DocumentBuilder::new();
    enum Ev {
        Enter(usize),
        Exit,
    }
    let mut stack = vec![Ev::Enter(0)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(i) => {
                b.begin(&format!("l{}", offset + spec[i].1));
                stack.push(Ev::Exit);
                for &c in children[i].iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit => b.end(),
        }
    }
    b.finish().expect("spec builds a single tree")
}

/// Same-universe fingerprint: raw key bytes → count, plus per-level pruned
/// flags. Canonical keys of different sizes have different byte lengths, so
/// one flat map cannot conflate levels.
type SummaryFingerprint = (Vec<(usize, bool)>, BTreeMap<Vec<u8>, u64>);

fn summary_fingerprint(s: &Summary) -> SummaryFingerprint {
    let counts = s
        .iter()
        .map(|(key, count)| (key.as_bytes().to_vec(), count))
        .collect();
    (s.level_info(), counts)
}

/// Cross-universe fingerprint: every stored pattern rendered over label
/// *names* with siblings sorted by their rendered form. Canonical child
/// order follows label *ids*, which legitimately differ between merge
/// orders, so the rendering must re-normalize by name.
fn lattice_fingerprint(lat: &TreeLattice) -> BTreeMap<String, u64> {
    fn render(twig: &tl_twig::Twig, node: tl_twig::TwigNodeId, lat: &TreeLattice) -> String {
        let mut kids: Vec<String> = twig
            .children(node)
            .iter()
            .map(|&c| render(twig, c, lat))
            .collect();
        kids.sort();
        let mut out = lat.labels().resolve(twig.label(node)).to_string();
        for kid in kids {
            out.push('[');
            out.push_str(&kid);
            out.push(']');
        }
        out
    }
    lat.summary()
        .iter()
        .map(|(key, count)| {
            let twig = key.decode();
            (render(&twig, twig.root(), lat), count)
        })
        .collect()
}

fn merged(a: &TreeLattice, b: &TreeLattice) -> TreeLattice {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `merge(s, empty) == s == merge(empty, s)` on the raw key bytes.
    #[test]
    fn empty_summary_is_a_two_sided_merge_identity(spec in arb_tree(24, 4)) {
        let doc = build_doc(&spec, 0);
        let lat = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        let reference = summary_fingerprint(lat.summary());

        let mut right = lat.summary().clone();
        right.merge(&Summary::empty());
        prop_assert_eq!(summary_fingerprint(&right), reference.clone());

        let mut left = Summary::empty();
        left.merge(lat.summary());
        prop_assert_eq!(summary_fingerprint(&left), reference);
    }

    /// Merging is commutative and associative over overlapping-but-distinct
    /// label universes, and stays so when δ-pruning re-runs once after the
    /// final merge (the order `build_corpus` uses).
    #[test]
    fn merge_is_commutative_and_associative_up_to_repruning(
        sa in arb_tree(20, 4),
        sb in arb_tree(20, 4),
        sc in arb_tree(20, 4),
    ) {
        let k = BuildConfig::with_k(3);
        let a = TreeLattice::build(&build_doc(&sa, 0), &k);
        let b = TreeLattice::build(&build_doc(&sb, 2), &k);
        let c = TreeLattice::build(&build_doc(&sc, 4), &k);

        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(lattice_fingerprint(&ab), lattice_fingerprint(&ba));

        let ab_c = merged(&ab, &c);
        let bc = merged(&b, &c);
        let a_bc = merged(&a, &bc);
        prop_assert_eq!(lattice_fingerprint(&ab_c), lattice_fingerprint(&a_bc));

        // Pruning after the final merge commutes with the merge order even
        // though pruning the operands first would not.
        let mut left = ab_c;
        let mut right = a_bc;
        left.prune(0.1);
        right.prune(0.1);
        prop_assert_eq!(lattice_fingerprint(&left), lattice_fingerprint(&right));
    }

    /// Sharded corpus mining serializes bit-identically to sequential
    /// mining for every shard/thread split of a seeded corpus.
    #[test]
    fn shard_then_merge_is_bit_identical_to_sequential(
        seed in 0u64..1000,
        docs in 2usize..5,
        shards in 2usize..6,
        threads in 1usize..4,
    ) {
        let corpus: Vec<Document> = (0..docs)
            .map(|i| Dataset::Xmark.generate(GenConfig {
                seed: seed + i as u64,
                target_elements: 300,
            }))
            .collect();
        let config = |shards, threads| CorpusConfig { max_size: 3, shards, threads };

        let sequential = TreeLattice::build_corpus(&corpus, config(1, 1), None);
        let sharded = TreeLattice::build_corpus(&corpus, config(shards, threads), None);
        prop_assert_eq!(sequential.to_bytes(), sharded.to_bytes());

        // The same holds when δ-pruning runs after the merge.
        let sequential = TreeLattice::build_corpus(&corpus, config(1, 1), Some(0.05));
        let sharded = TreeLattice::build_corpus(&corpus, config(shards, threads), Some(0.05));
        prop_assert_eq!(sequential.to_bytes(), sharded.to_bytes());
    }
}
