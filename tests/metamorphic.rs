//! Metamorphic law suite: the paper's identities run as executable laws
//! (see `tl_oracle::laws`) over product documents and seeded random
//! corpora.
//!
//! `TL_ORACLE_SEED` (comma-separated) narrows the random-corpus laws to
//! one CI matrix slot.

use tl_oracle::{generate, laws, seeds_from_env, CorpusConfig};
use treelattice::{BuildConfig, TreeLattice};

const DEFAULT_SEEDS: &[u64] = &[1, 7, 42];

#[test]
fn lemma1_identity_and_estimator_exactness_on_product_documents() {
    // Feature counts × replica counts × lattice orders: every combination
    // must satisfy the decomposition identity on oracle counts AND make
    // all four estimators exact (independence holds by construction).
    for (features, replicas, k) in [(2, 3, 2), (3, 2, 2), (4, 2, 3), (5, 1, 3)] {
        laws::lemma1_decomposition_identity(features, replicas, k)
            .unwrap_or_else(|e| panic!("features={features} replicas={replicas} k={k}: {e}"));
    }
}

#[test]
fn lemma2_cover_invariants_on_random_twigs() {
    for &seed in &seeds_from_env("TL_ORACLE_SEED", DEFAULT_SEEDS) {
        let corpus = generate(&CorpusConfig {
            seed: seed.wrapping_add(0x1e44a2), // decorrelate from differential corpora
            docs: 2,
            twigs_per_doc: 25,
            twig_sizes: (3, 10),
            ..CorpusConfig::default()
        });
        let mut checked = 0usize;
        for case in &corpus.cases {
            for k in 2..=case.twig.len() {
                laws::lemma2_cover_overlap(&case.twig, k)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                checked += 1;
            }
        }
        assert!(checked >= 50, "seed {seed}: only {checked} covers checked");
    }
}

#[test]
fn exactness_voting_and_engine_laws_on_random_corpora() {
    for &seed in &seeds_from_env("TL_ORACLE_SEED", DEFAULT_SEEDS) {
        let corpus = generate(&CorpusConfig {
            seed,
            docs: 2,
            twigs_per_doc: 20,
            twig_sizes: (2, 6),
            ..CorpusConfig::default()
        });
        for (i, doc) in corpus.docs.iter().enumerate() {
            let twigs: Vec<_> = corpus
                .cases
                .iter()
                .filter(|c| c.doc == i)
                .map(|c| c.twig.clone())
                .collect();
            let lattice = TreeLattice::build(doc, &BuildConfig::with_k(3));
            laws::exactness_below_k(doc, &lattice, &twigs)
                .unwrap_or_else(|e| panic!("seed {seed} doc {i}: {e}"));
            laws::voting_cap_one_is_plain(&lattice, &twigs)
                .unwrap_or_else(|e| panic!("seed {seed} doc {i}: {e}"));
            laws::engine_matches_uncached(&lattice, &twigs)
                .unwrap_or_else(|e| panic!("seed {seed} doc {i}: {e}"));
        }
    }
}
