//! Proves the mmap catalog's hot path is zero-copy *and* zero-alloc.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! opens an [`MmapCatalog`], warms nothing, and asserts that a burst of
//! `lookup_bytes` probes — hits, completed-level misses, and pruned-level
//! misses alike — performs **zero** heap allocations. Binary search over
//! the fixed-stride frame bytes must borrow, never copy.
//!
//! This lives in its own integration-test binary because the allocator
//! hook is process-global: sharing a binary with other tests would make
//! the counter racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use treelattice::{BuildConfig, Lookup, MmapCatalog, PatternStore, TreeLattice};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn mmap_lookups_allocate_zero_bytes_on_the_hot_path() {
    // Setup (allocates freely): build a pruned lattice, persist the frame,
    // open the mapped catalog, and pre-collect every probe key.
    let doc = tl_datagen::Dataset::Xmark.generate(tl_datagen::GenConfig {
        seed: 42,
        target_elements: 2_000,
    });
    let mut lat = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    lat.prune(0.05);

    let dir = std::env::temp_dir().join(format!("tl-mmap-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("frame.tlat");
    std::fs::write(&path, lat.to_bytes()).unwrap();

    let catalog = MmapCatalog::open(&path).unwrap();
    let mut probes: Vec<Vec<u8>> = lat
        .summary()
        .iter()
        .map(|(key, _)| key.as_bytes().to_vec())
        .collect();
    // Misses too: mutate stored keys so binary search fails at every level.
    let missing: Vec<Vec<u8>> = probes
        .iter()
        .map(|k| {
            let mut k = k.clone();
            let last = k.len() - 1;
            k[last] ^= 0x55;
            k
        })
        .collect();
    probes.extend(missing);
    assert!(probes.len() > 100, "corpus too small to be meaningful");

    // Measured region: nothing but lookups between the two counter reads.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut hits = 0u64;
    for key in &probes {
        if let Lookup::Exact(c) = catalog.lookup_bytes(key) {
            hits += c;
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(hits > 0, "probe set never hit the catalog");
    assert_eq!(
        after - before,
        0,
        "mmap lookup hot path allocated ({} probes)",
        probes.len()
    );

    drop(catalog);
    let _ = std::fs::remove_dir_all(dir);
}
