//! Property-based tests over random documents and twigs.
//!
//! Core invariants:
//! * parse ∘ write is the identity on document structure;
//! * the canonical key is invariant under sibling permutations;
//! * the production match counter agrees with a brute-force oracle that
//!   enumerates injective mappings explicitly;
//! * mined lattice counts agree with the match counter;
//! * any pattern stored in the lattice is estimated exactly by every
//!   estimator;
//! * estimates are always finite and non-negative;
//! * serialization round-trips summaries bit-exactly.

use proptest::prelude::*;
use tl_twig::canonical::key_of;
use tl_twig::{count_matches, Twig};
use tl_xml::{Document, DocumentBuilder, FxHashSet, LabelId};
use treelattice::{BuildConfig, Estimator, TreeLattice};

/// Raw tree description: node i has parent `spec[i].0 % i` (node 0 is the
/// root) and label `l<spec[i].1>`.
type TreeSpec = Vec<(u32, u8)>;

fn arb_tree(max_nodes: usize, labels: u8) -> impl Strategy<Value = TreeSpec> {
    prop::collection::vec((any::<u32>(), 0..labels), 1..max_nodes)
}

/// Builds a document from a tree spec.
fn build_doc(spec: &TreeSpec) -> Document {
    let n = spec.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(p, _)) in spec.iter().enumerate().skip(1) {
        children[(p as usize) % i].push(i);
    }
    let mut b = DocumentBuilder::new();
    // Iterative DFS emitting begin/end events.
    enum Ev {
        Enter(usize),
        Exit,
    }
    let mut stack = vec![Ev::Enter(0)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(i) => {
                b.begin(&format!("l{}", spec[i].1));
                stack.push(Ev::Exit);
                for &c in children[i].iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit => b.end(),
        }
    }
    b.finish().expect("spec builds a single tree")
}

/// Builds a twig from a tree spec against a document's label alphabet
/// (labels outside the alphabet are clamped into it).
fn build_twig(spec: &TreeSpec, doc: &Document) -> Twig {
    let n_labels = doc.labels().len() as u32;
    let label = |raw: u8| LabelId(u32::from(raw) % n_labels.max(1));
    let mut t = Twig::single(label(spec[0].1));
    let mut ids = vec![0u32; spec.len()];
    for (i, &(p, l)) in spec.iter().enumerate().skip(1) {
        let parent = ids[(p as usize) % i];
        ids[i] = t.add_child(parent, label(l));
    }
    t.normalized()
}

/// Brute-force oracle: counts injective label/edge-preserving mappings by
/// explicit enumeration with a global used-set.
fn brute_force_count(doc: &Document, twig: &Twig) -> u64 {
    let order = twig.pre_order();
    let mut assignment: Vec<u32> = vec![u32::MAX; twig.len()];
    let mut used: FxHashSet<u32> = FxHashSet::default();

    fn rec(
        doc: &Document,
        twig: &Twig,
        order: &[u32],
        idx: usize,
        assignment: &mut [u32],
        used: &mut FxHashSet<u32>,
    ) -> u64 {
        if idx == order.len() {
            return 1;
        }
        let q = order[idx];
        let want = twig.label(q);
        let candidates: Vec<tl_xml::NodeId> = match twig.parent(q) {
            None => doc.pre_order().collect(),
            Some(p) => {
                let img = tl_xml::NodeId(assignment[p as usize]);
                doc.children(img).collect()
            }
        };
        let mut total = 0u64;
        for v in candidates {
            if doc.label(v) != want || used.contains(&v.0) {
                continue;
            }
            used.insert(v.0);
            assignment[q as usize] = v.0;
            total += rec(doc, twig, order, idx + 1, assignment, used);
            used.remove(&v.0);
            assignment[q as usize] = u32::MAX;
        }
        total
    }
    rec(doc, twig, &order, 0, &mut assignment, &mut used)
}

/// Recursively permutes sibling order according to `seed`.
fn shuffled_copy(twig: &Twig, seed: u64) -> Twig {
    fn rec(src: &Twig, node: u32, dst: &mut Twig, dst_node: u32, seed: u64) {
        let mut kids: Vec<u32> = src.children(node).to_vec();
        // Deterministic pseudo-shuffle.
        let mut state = seed ^ (u64::from(node) << 32) ^ 0x9E37;
        for i in (1..kids.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            kids.swap(i, j);
        }
        for c in kids {
            let id = dst.add_child(dst_node, src.label(c));
            rec(src, c, dst, id, seed);
        }
    }
    let mut out = Twig::single(twig.label(twig.root()));
    let root = out.root();
    rec(twig, twig.root(), &mut out, root, seed);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_roundtrip(spec in arb_tree(40, 5)) {
        let doc = build_doc(&spec);
        let text = tl_xml::writer::document_to_string(&doc);
        let back = tl_xml::parse_document(text.as_bytes(), tl_xml::ParseOptions::default())
            .expect("writer output parses");
        prop_assert_eq!(doc.len(), back.len());
        for (a, b) in doc.pre_order().zip(back.pre_order()) {
            prop_assert_eq!(doc.label_name(doc.label(a)), back.label_name(back.label(b)));
            prop_assert_eq!(doc.parent(a).map(|p| p.0), back.parent(b).map(|p| p.0));
        }
    }

    #[test]
    fn canonical_key_invariant_under_sibling_shuffles(
        spec in arb_tree(12, 4),
        seed in any::<u64>(),
    ) {
        let doc = build_doc(&spec); // supplies a label alphabet
        let twig = build_twig(&spec, &doc);
        let shuffled = shuffled_copy(&twig, seed);
        prop_assert_eq!(key_of(&twig), key_of(&shuffled));
    }

    #[test]
    fn matcher_agrees_with_brute_force(
        doc_spec in arb_tree(25, 3),
        twig_spec in arb_tree(5, 3),
    ) {
        let doc = build_doc(&doc_spec);
        let twig = build_twig(&twig_spec, &doc);
        let fast = count_matches(&doc, &twig);
        let slow = brute_force_count(&doc, &twig);
        prop_assert_eq!(fast, slow, "twig {:?}", twig);
    }

    #[test]
    fn dense_kernel_agrees_with_brute_force_and_reference(
        doc_spec in arb_tree(40, 3),
        twig_spec in arb_tree(6, 3),
    ) {
        let doc = build_doc(&doc_spec);
        let twig = build_twig(&twig_spec, &doc);
        let index = tl_xml::DocIndex::new(&doc);
        let dense = tl_twig::MatchCounter::with_index(&doc, &index);
        let reference = tl_twig::ReferenceMatchCounter::new(&doc);
        let oracle = brute_force_count(&doc, &twig);
        prop_assert_eq!(dense.count(&twig), oracle, "dense vs oracle, twig {:?}", &twig);
        prop_assert_eq!(reference.count(&twig), oracle, "reference vs oracle");
        // Per-root counts: sorted by node id, correctly labeled, sum = total.
        let by_root = dense.count_by_root(&twig);
        prop_assert!(by_root.windows(2).all(|w| w[0].0.0 < w[1].0.0));
        let want = twig.label(twig.root());
        for &(v, m) in &by_root {
            prop_assert_eq!(doc.label(v), want);
            prop_assert!(m >= 1);
        }
        let total = by_root.iter().fold(0u64, |a, &(_, m)| a.saturating_add(m));
        prop_assert_eq!(total, oracle);
    }

    // A 2-letter alphabet forces duplicate-sibling-label twigs, so the
    // injective subset DP is exercised constantly rather than occasionally.
    #[test]
    fn dense_kernel_duplicate_sibling_labels(
        doc_spec in arb_tree(40, 2),
        twig_spec in arb_tree(6, 2),
    ) {
        let doc = build_doc(&doc_spec);
        let twig = build_twig(&twig_spec, &doc);
        let dense = tl_twig::MatchCounter::new(&doc);
        let reference = tl_twig::ReferenceMatchCounter::new(&doc);
        let oracle = brute_force_count(&doc, &twig);
        prop_assert_eq!(dense.count(&twig), oracle, "dense vs oracle, twig {:?}", &twig);
        prop_assert_eq!(reference.count(&twig), oracle, "reference vs oracle");
    }

    #[test]
    fn mined_counts_agree_with_matcher(doc_spec in arb_tree(30, 3)) {
        let doc = build_doc(&doc_spec);
        let report = tl_miner::mine(&doc, tl_miner::MineConfig { max_size: 4, threads: 1 });
        for size in 1..=4 {
            for (key, count) in report.lattice.iter_level(size) {
                let twig = key.decode();
                prop_assert_eq!(count_matches(&doc, &twig), count);
            }
        }
    }

    /// Two-label documents force duplicate-sibling-label candidates, so the
    /// miner's subset-DP path (with cached sub-twig maps as weights) is
    /// exercised alongside the leaf and accumulated factor paths.
    #[test]
    fn mined_counts_agree_with_matcher_two_labels(doc_spec in arb_tree(30, 2)) {
        let doc = build_doc(&doc_spec);
        let report = tl_miner::mine(&doc, tl_miner::MineConfig { max_size: 4, threads: 1 });
        for size in 1..=4 {
            for (key, count) in report.lattice.iter_level(size) {
                let twig = key.decode();
                prop_assert_eq!(count_matches(&doc, &twig), count);
            }
        }
    }

    #[test]
    fn stored_patterns_estimate_exactly(doc_spec in arb_tree(30, 3)) {
        let doc = build_doc(&doc_spec);
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        for size in 1..=3usize {
            for (key, count) in lattice.summary().iter_level(size) {
                let twig = key.decode();
                for est in Estimator::ALL {
                    prop_assert_eq!(lattice.estimate(&twig, est), count as f64);
                }
            }
        }
    }

    #[test]
    fn estimates_are_finite_and_nonnegative(
        doc_spec in arb_tree(30, 3),
        twig_spec in arb_tree(8, 4),
    ) {
        let doc = build_doc(&doc_spec);
        let twig = build_twig(&twig_spec, &doc);
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        for est in Estimator::ALL {
            let v = lattice.estimate(&twig, est);
            prop_assert!(v.is_finite() && v >= 0.0, "{est}: {v}");
        }
    }

    #[test]
    fn fixed_cover_invariants_on_random_twigs(
        twig_spec in arb_tree(10, 4),
        k_choice in any::<u8>(),
    ) {
        use tl_twig::ops::fixed_cover;
        let doc = build_doc(&twig_spec); // label alphabet donor
        let twig = build_twig(&twig_spec, &doc);
        prop_assume!(twig.len() >= 2);
        let k = 2 + (k_choice as usize) % (twig.len() - 1);
        let steps = fixed_cover(&twig, k);
        prop_assert_eq!(steps.len(), twig.len() - k + 1);
        for (i, step) in steps.iter().enumerate() {
            prop_assert_eq!(step.subtree.len(), k);
            if i == 0 {
                prop_assert!(step.overlap.is_none());
            } else {
                let overlap = step.overlap.as_ref().unwrap();
                prop_assert_eq!(overlap.len(), k - 1);
                // The overlap's match count can never be below the
                // covering subtree's on any document (it is a sub-twig).
                let c_sub = count_matches(&doc, &step.subtree);
                let c_ov = count_matches(&doc, overlap);
                prop_assert!(c_ov >= u64::from(c_sub > 0));
            }
        }
    }

    #[test]
    fn decompose_pair_invariants_on_random_twigs(twig_spec in arb_tree(10, 4)) {
        use tl_twig::ops::{decompose_pair, removable_pairs};
        let doc = build_doc(&twig_spec);
        let twig = build_twig(&twig_spec, &doc);
        prop_assume!(twig.len() >= 3);
        let pairs = removable_pairs(&twig);
        prop_assert!(!pairs.is_empty(), "size >= 3 twigs always have a pair");
        for (u, v) in pairs {
            let d = decompose_pair(&twig, u, v);
            prop_assert_eq!(d.t1.len(), twig.len() - 1);
            prop_assert_eq!(d.t2.len(), twig.len() - 1);
            prop_assert_eq!(d.t12.len(), twig.len() - 2);
        }
    }

    #[test]
    fn serialization_roundtrip(doc_spec in arb_tree(25, 4)) {
        let doc = build_doc(&doc_spec);
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        let back = TreeLattice::from_bytes(&lattice.to_bytes()).expect("round trip");
        prop_assert_eq!(back.summary().len(), lattice.summary().len());
        for (key, count) in lattice.summary().iter() {
            prop_assert_eq!(back.summary().stored(key), Some(count));
        }
    }

    #[test]
    fn zero_pruning_preserves_stored_pattern_estimates(doc_spec in arb_tree(25, 3)) {
        let doc = build_doc(&doc_spec);
        let full = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        let mut pruned = full.clone();
        pruned.prune(0.0);
        for (key, count) in full.summary().iter() {
            let twig = key.decode();
            let est = pruned.estimate(&twig, Estimator::Recursive);
            prop_assert!(
                (est - count as f64).abs() < 1e-6,
                "pattern with count {} estimates to {} after pruning",
                count,
                est
            );
        }
    }
}
