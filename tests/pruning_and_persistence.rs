//! Integration tests for δ-pruning economics and summary persistence at
//! realistic (small) corpus scale.

use tl_datagen::{Dataset, GenConfig};
use tl_workload::{average_relative_error_pct, positive_workload};
use treelattice::{BuildConfig, Estimator, TreeLattice};

fn corpus(ds: Dataset) -> tl_xml::Document {
    ds.generate(GenConfig {
        seed: 31,
        target_elements: 4_000,
    })
}

#[test]
fn zero_pruning_saves_most_on_regular_datasets() {
    // Figure 10(a)'s shape: regular corpora (NASA/PSD/XMark stand-ins)
    // prune far more than the correlated IMDB stand-in.
    let mut fractions = std::collections::HashMap::new();
    for ds in Dataset::ALL {
        let mut lattice = TreeLattice::build(&corpus(ds), &BuildConfig::with_k(4));
        let report = lattice.prune(0.0);
        fractions.insert(ds.name(), report.pruned_fraction());
    }
    for name in ["nasa", "psd", "xmark"] {
        assert!(
            fractions[name] > fractions["imdb"],
            "{name} ({}) should out-prune imdb ({})",
            fractions[name],
            fractions["imdb"]
        );
    }
}

#[test]
fn delta_trades_space_for_accuracy() {
    let doc = corpus(Dataset::Imdb);
    let full = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let w = positive_workload(&doc, 6, 30, 13);
    let truths = w.true_counts();
    let mut prev_bytes = usize::MAX;
    let mut errors = Vec::new();
    for delta in [0.0, 0.1, 0.3] {
        let mut lat = full.clone();
        lat.prune(delta);
        assert!(
            lat.summary_bytes() <= prev_bytes,
            "delta {delta} grew the summary"
        );
        prev_bytes = lat.summary_bytes();
        let estimates: Vec<f64> = w
            .cases
            .iter()
            .map(|c| lat.estimate(&c.twig, Estimator::RecursiveVoting))
            .collect();
        errors.push(average_relative_error_pct(&truths, &estimates));
    }
    // Accuracy at delta = 0.3 must not be better than at delta = 0
    // (it may tie when the workload avoids pruned regions).
    assert!(
        errors[2] + 1e-9 >= errors[0],
        "errors not monotone-ish: {errors:?}"
    );
}

#[test]
fn pruned_summaries_round_trip_and_estimate_identically() {
    let doc = corpus(Dataset::Nasa);
    let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    lattice.prune(0.05);
    let restored = TreeLattice::from_bytes(&lattice.to_bytes()).expect("round trip");
    let w = positive_workload(&doc, 6, 25, 21);
    for case in &w.cases {
        for est in Estimator::ALL {
            assert_eq!(
                lattice.estimate(&case.twig, est),
                restored.estimate(&case.twig, est),
                "{est}"
            );
        }
    }
}

#[test]
fn deeper_lattices_are_more_accurate_but_larger() {
    // The k ablation promised in DESIGN.md: accuracy improves (weakly)
    // with lattice order while size grows.
    let doc = corpus(Dataset::Xmark);
    let w = positive_workload(&doc, 6, 30, 19);
    let truths = w.true_counts();
    let mut sizes = Vec::new();
    let mut errors = Vec::new();
    for k in [2usize, 3, 4, 5] {
        let lat = TreeLattice::build(&doc, &BuildConfig::with_k(k));
        sizes.push(lat.summary_bytes());
        let estimates: Vec<f64> = w
            .cases
            .iter()
            .map(|c| lat.estimate(&c.twig, Estimator::RecursiveVoting))
            .collect();
        errors.push(average_relative_error_pct(&truths, &estimates));
    }
    for pair in sizes.windows(2) {
        assert!(pair[1] > pair[0], "summary must grow with k: {sizes:?}");
    }
    assert!(
        errors[3] <= errors[0],
        "k=5 ({}) should beat k=2 ({})",
        errors[3],
        errors[0]
    );
    // Size-6 queries are stored directly at k >= 6; at k = 5 they need one
    // decomposition step and should already be very accurate.
    assert!(errors[3] < 25.0, "k=5 error {}%", errors[3]);
}

#[test]
fn online_insertion_of_observed_patterns_improves_future_answers() {
    // The paper's future-work direction (XPathLearner-style tuning):
    // inserting an observed true count into the summary makes the exact
    // value available from then on. `Summary::insert` is the primitive.
    let doc = corpus(Dataset::Psd);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let w = positive_workload(&doc, 5, 10, 23);
    let case = &w.cases[0];
    let before = lattice.estimate(&case.twig, Estimator::Recursive);
    // Feed back the observed truth.
    let mut tuned_summary = lattice.summary().clone();
    tuned_summary.insert(tl_twig::canonical::key_of(&case.twig), case.true_count);
    let tuned = TreeLattice::from_parts(lattice.labels().clone(), tuned_summary);
    let after = tuned.estimate(&case.twig, Estimator::Recursive);
    assert_eq!(after, case.true_count as f64);
    // `before` may or may not have been exact; tuning never hurts.
    assert!((after - case.true_count as f64).abs() <= (before - case.true_count as f64).abs());
}

/// Satellite property: persistence is estimate-transparent. A summary that
/// goes through `to_bytes`/`from_bytes` must answer every query
/// bit-identically to the original — for arbitrary twigs (stored or not,
/// matching or not), all four estimators, pruned or unpruned summaries.
mod persistence_properties {
    use super::*;
    use proptest::prelude::*;
    use tl_xml::{DocumentBuilder, LabelId};
    use treelattice::EstimateOptions;

    /// Node i hangs off `spec[i].0 % i` with label `l<spec[i].1>`.
    type TreeSpec = Vec<(u32, u8)>;

    fn arb_tree(max_nodes: usize, labels: u8) -> impl Strategy<Value = TreeSpec> {
        prop::collection::vec((any::<u32>(), 0..labels), 1..max_nodes)
    }

    fn build_doc(spec: &TreeSpec) -> tl_xml::Document {
        let n = spec.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(p, _)) in spec.iter().enumerate().skip(1) {
            children[(p as usize) % i].push(i);
        }
        let mut b = DocumentBuilder::new();
        let mut stack = vec![(0usize, false)];
        while let Some((i, entered)) = stack.pop() {
            if entered {
                b.end();
                continue;
            }
            b.begin(&format!("l{}", spec[i].1));
            stack.push((i, true));
            for &c in children[i].iter().rev() {
                stack.push((c, false));
            }
        }
        b.finish().expect("spec builds a single tree")
    }

    fn build_twig(spec: &TreeSpec, doc: &tl_xml::Document) -> tl_twig::Twig {
        let n_labels = doc.labels().len() as u32;
        let label = |raw: u8| LabelId(u32::from(raw) % n_labels.max(1));
        let mut t = tl_twig::Twig::single(label(spec[0].1));
        let mut ids = vec![0u32; spec.len()];
        for (i, &(p, l)) in spec.iter().enumerate().skip(1) {
            ids[i] = t.add_child(ids[(p as usize) % i], label(l));
        }
        t.normalized()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtripped_summaries_estimate_bit_identically(
            doc_spec in arb_tree(30, 4),
            twig_specs in prop::collection::vec(arb_tree(7, 4), 1..5),
            k_choice in 2usize..5,
            prune_delta in prop_oneof![
                Just(None),
                Just(Some(0.0)),
                Just(Some(0.1)),
            ],
        ) {
            let doc = build_doc(&doc_spec);
            let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k_choice));
            if let Some(delta) = prune_delta {
                lattice.prune(delta);
            }
            let restored = TreeLattice::from_bytes(&lattice.to_bytes()).expect("round trip");
            let opts = EstimateOptions::default();
            for spec in &twig_specs {
                let twig = build_twig(spec, &doc);
                for est in Estimator::ALL {
                    let a = lattice.estimate_with(&twig, est, &opts);
                    let b = restored.estimate_with(&twig, est, &opts);
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} diverged after round trip: {} vs {} on twig {:?}",
                        est, a, b, twig
                    );
                }
            }
        }
    }
}
