//! End-to-end value-predicate estimation (the paper's §6 future work #1):
//! values become synthetic leaf labels, so the unchanged TreeLattice
//! machinery estimates `laptop[brand="Dell"]`-style queries.

use tl_twig::{count_matches, parse_twig_valued};
use tl_xml::{parse_document, Document, ParseOptions, ValueMode};
use treelattice::{BuildConfig, Estimator, TreeLattice};

/// A small product catalog with skewed brand values.
fn catalog_xml() -> String {
    let mut s = String::from("<catalog>");
    for i in 0..30 {
        let brand = match i % 5 {
            0..=2 => "Dell",
            3 => "HP",
            _ => "Lenovo",
        };
        let price = if i % 2 == 0 { "999" } else { "1299" };
        s.push_str(&format!(
            "<laptop><brand>{brand}</brand><price>{price}</price></laptop>"
        ));
    }
    s.push_str("</catalog>");
    s
}

fn parse_with(mode: ValueMode) -> Document {
    parse_document(
        catalog_xml().as_bytes(),
        ParseOptions {
            values: mode,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn exact_value_counts_with_as_labels() {
    let doc = parse_with(ValueMode::AsLabels);
    let mut labels = doc.labels().clone();
    let q = parse_twig_valued("laptop[brand=\"Dell\"]", &mut labels, ValueMode::AsLabels).unwrap();
    assert_eq!(count_matches(&doc, &q), 18);
    let q2 = parse_twig_valued(
        "laptop[brand=\"Dell\"][price=\"999\"]",
        &mut labels,
        ValueMode::AsLabels,
    )
    .unwrap();
    // Dell at even i (i%5 in {0,1,2} and i even): i in
    // {0,2,6,10,12,16,20,22,26}: 9 laptops.
    assert_eq!(count_matches(&doc, &q2), 9);
}

#[test]
fn lattice_estimates_value_predicates_exactly_in_range() {
    let doc = parse_with(ValueMode::AsLabels);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let est = lattice
        .estimate_query_valued(
            "laptop[brand=\"Dell\"]",
            ValueMode::AsLabels,
            Estimator::RecursiveVoting,
        )
        .unwrap();
    assert_eq!(est, 18.0, "size-3 valued twig is in the lattice");
    let zero = lattice
        .estimate_query_valued(
            "laptop[brand=\"NoSuchBrand\"]",
            ValueMode::AsLabels,
            Estimator::Recursive,
        )
        .unwrap();
    assert_eq!(zero, 0.0);
}

#[test]
fn larger_valued_queries_decompose() {
    let doc = parse_with(ValueMode::AsLabels);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    // Size 5: laptop[brand[=Dell]][price[=999]] must decompose.
    let mut labels = doc.labels().clone();
    let q = parse_twig_valued(
        "laptop[brand=\"Dell\"][price=\"999\"]",
        &mut labels,
        ValueMode::AsLabels,
    )
    .unwrap();
    assert_eq!(q.len(), 5);
    let truth = count_matches(&doc, &q) as f64;
    let est = lattice.estimate(&q, Estimator::RecursiveVoting);
    // Independence estimate: 18 * 15 / 30 = 9 = truth here (brand and
    // price are independent in the generator).
    assert!((est - truth).abs() < 1.0, "est {est} vs truth {truth}");
}

#[test]
fn bucketed_mode_overestimates_never_underestimates() {
    let exact_doc = parse_with(ValueMode::AsLabels);
    let mut exact_labels = exact_doc.labels().clone();
    let q_exact = parse_twig_valued(
        "laptop[brand=\"HP\"]",
        &mut exact_labels,
        ValueMode::AsLabels,
    )
    .unwrap();
    let truth = count_matches(&exact_doc, &q_exact) as f64;

    for buckets in [2u32, 8, 64, 1024] {
        let mode = ValueMode::Bucketed(buckets);
        let doc = parse_with(mode);
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        let est = lattice
            .estimate_query_valued("laptop[brand=\"HP\"]", mode, Estimator::Recursive)
            .unwrap();
        assert!(
            est >= truth - 1e-9,
            "buckets={buckets}: hashed buckets can only merge values, est {est} < truth {truth}"
        );
    }
    // With enough buckets the estimate is exact (no collisions among the
    // three brands and two prices).
    let mode = ValueMode::Bucketed(1024);
    let doc = parse_with(mode);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let est = lattice
        .estimate_query_valued("laptop[brand=\"HP\"]", mode, Estimator::Recursive)
        .unwrap();
    assert_eq!(est, truth);
}

#[test]
fn value_and_structure_mix_in_one_query() {
    let doc = parse_with(ValueMode::AsLabels);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let est = lattice
        .estimate_query_valued(
            "catalog/laptop[brand=\"Lenovo\"]",
            ValueMode::AsLabels,
            Estimator::FixSized,
        )
        .unwrap();
    assert_eq!(est, 6.0);
}

#[test]
fn value_summary_survives_serialization() {
    let doc = parse_with(ValueMode::AsLabels);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    let restored = TreeLattice::from_bytes(&lattice.to_bytes()).unwrap();
    let q = "laptop[brand=\"Dell\"]";
    assert_eq!(
        lattice
            .estimate_query_valued(q, ValueMode::AsLabels, Estimator::Recursive)
            .unwrap(),
        restored
            .estimate_query_valued(q, ValueMode::AsLabels, Estimator::Recursive)
            .unwrap(),
    );
}
