//! Offline shim for `bytes` 1.x (see `vendor/README.md`).
//!
//! Implements the little-endian cursor subset used by
//! `treelattice::serialize`: [`Buf`] for `&[u8]` and [`BufMut`] for
//! `Vec<u8>`.

use std::ops::Deref;

/// An owned byte buffer returned by [`Buf::copy_to_bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Extracts the owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads and returns the next `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.remaining()`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_slice(b"tail");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.remaining(), 4);
        assert_eq!(&buf.copy_to_bytes(4)[..], b"tail");
        assert_eq!(buf.remaining(), 0);
    }
}
