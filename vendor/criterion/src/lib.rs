//! Offline shim for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Provides the macro/builder surface the workspace benches use and times
//! each benchmark with a plain wall-clock mean (short warm-up, fixed-budget
//! measurement loop). Results are printed one line per benchmark; there are
//! no statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation; printed next to the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    /// Measurement budget per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group; benchmarks report as `group/function`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    /// Times a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measurement;
        run_one(&id.into(), None, 50, budget, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales the measurement budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let budget = self.criterion.measurement * (self.sample_size as u32) / 50;
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            budget.max(Duration::from_millis(50)),
            f,
        );
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: time one iteration to size the real run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budgeted = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let iters = budgeted.min(sample_size as u64 * 100).max(1);

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / mean_ns * 1e9 / (1 << 20) as f64
        ),
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / mean_ns * 1e9),
    });
    println!(
        "{id:<48} {:>12.1} ns/iter  [{} iters]{}",
        mean_ns,
        iters,
        rate.unwrap_or_default()
    );
}

/// Declares a group function running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group
            .sample_size(10)
            .throughput(Throughput::Elements(1))
            .bench_function("counter", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }
}
