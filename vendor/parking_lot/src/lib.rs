//! Offline shim for `parking_lot` 0.12 (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, recovering from
//! poison instead of propagating it (a panicked writer's data is returned
//! as-is, matching parking_lot semantics).

use std::sync;

/// Mutual exclusion lock; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
