//! Offline shim for `proptest` 1.x (see `vendor/README.md`).
//!
//! Covers the subset the workspace tests use: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert*`/`prop_assume!`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `Just`, `prop_map` (via the `StrategyExt`
//! extension trait), and an unweighted `prop_oneof!`. Values are generated
//! from a deterministic per-test RNG (seeded from the test name) and
//! failing cases are reported with the case index; there is no shrinking.

pub mod test_runner {
    /// Run-loop configuration; only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure carrying the formatted assertion message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic generator state (splitmix64).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the stream from a test name so distinct tests draw
        /// distinct-but-reproducible values.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(seed)
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate `ValueTree`: the shim
    /// generates final values directly and never shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy producing a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`StrategyExt::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Combinators available on every strategy (mirrors the subset of
    /// proptest's inherent `Strategy` methods the workspace uses; a
    /// separate extension trait keeps the core trait object-safe).
    pub trait StrategyExt: Strategy + Sized {
        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous composition
        /// (`prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + Sized> StrategyExt for S {}

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between same-valued strategies; built by
    /// `prop_oneof!` (unweighted arms only).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "empty prop_oneof!");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }
}

/// Uniform choice among strategies generating the same value type.
/// Unlike real proptest, arms are unweighted and chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::StrategyExt::boxed($strat)),+
        ])
    };
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with `size` drawn from `len_range` (half-open, like
    /// proptest's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: len_range,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, StrategyExt};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `fn name(binding in strategy, ...) { body }` items carrying their own
/// attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(0usize..1), &mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(any::<u32>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let strat = prop_oneof![
            (0u8..4).prop_map(u32::from),
            Just(100u32),
            any::<bool>().prop_map(|b| if b { 200 } else { 201 }),
        ];
        let mut seen_arms = [false; 3];
        for _ in 0..300 {
            match Strategy::generate(&strat, &mut rng) {
                0..=3 => seen_arms[0] = true,
                100 => seen_arms[1] = true,
                200 | 201 => seen_arms[2] = true,
                other => panic!("value {other} from no arm"),
            }
        }
        assert_eq!(seen_arms, [true; 3], "all arms should be drawn");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_filters(
            xs in prop::collection::vec((any::<u32>(), 0..4u8), 1..10),
            flip in any::<bool>(),
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(xs.len(), 0);
        }
    }
}
