//! Offline shim for `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements the subset of the rand API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed, but the
//! streams are *not* identical to the real `rand` crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let n = word.len().min(bytes.len() - i);
            bytes[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + unit_f64(rng) as $t * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + unit_f64(rng) as $t * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T`'s natural distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x1CE4_E5B9];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
