//! Offline shim for the `serde` facade (see `vendor/README.md`).
//!
//! Re-exports the no-op derives; the marker traits exist so `use
//! serde::{Deserialize, Serialize}` resolves in both namespaces.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented or called).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented or called).
pub trait Deserialize<'de>: Sized {}
