//! Offline shim for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` for API compatibility
//! but ships its own binary format (`treelattice::serialize`) and never
//! invokes a serde serializer, so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
